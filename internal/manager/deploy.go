package manager

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/faults"
	"repro/internal/hostplatform"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
)

// A fault plan injects at the runner level, so it must satisfy the
// runner's hook interface (faults deliberately does not import fame).
var _ fame.Injector = (*faults.Plan)(nil)

// DeployConfig controls how a topology is instantiated. Network latency,
// bandwidth, topology and blade selection are all runtime-configurable —
// only blade RTL changes would require a rebuild, exactly as in the paper.
type DeployConfig struct {
	// LinkLatency is the latency of every link, in target cycles
	// (default: 2 us at 3.2 GHz = 6400 cycles, the paper's standard).
	LinkLatency clock.Cycles
	// SwitchingLatency is the minimum port-to-port switch latency
	// (default 10 cycles, as in the paper's validation).
	SwitchingLatency clock.Cycles
	// Supernode packs four simulated blades per FPGA (Section III-A5).
	Supernode bool
	// Seed drives all node-level deterministic randomness.
	Seed uint64
	// DisableStaticARP leaves ARP tables empty so first-contact latency
	// includes an ARP round trip (used by the ping benchmark).
	DisableStaticARP bool
	// Freq is the target clock (default 3.2 GHz).
	Freq clock.Hz
	// Costs overrides the modeled kernel constants (zero = defaults).
	Costs softstack.Costs
	// FaultScenario names a registered fault-injection scenario (see
	// faults.Scenarios); empty means no injection. The schedule is derived
	// deterministically from Seed.
	FaultScenario string
	// FaultConfig, when non-nil, overrides FaultScenario with an explicit
	// fault configuration.
	FaultConfig *faults.Config
	// FaultHorizon bounds the fault schedule in target cycles (default
	// faults.DefaultHorizon; events are only generated below it).
	FaultHorizon clock.Cycles
	// Workers fixes how many workers the runner's parallel scheduler uses
	// (0 = GOMAXPROCS). Host-side tuning only: simulated behaviour is
	// bit-identical for every value, so it is excluded from TopologyHash.
	Workers int
	// Multiplexed selects the many-nodes-per-worker scheduling mode: each
	// worker's endpoint group runs as one fused scheduling unit instead of
	// one unit per endpoint (fame.SetMultiplexed). Host-side tuning only,
	// bit-identical to the default mode, so it too is excluded from
	// TopologyHash.
	Multiplexed bool
	// RingSlack adds producer-side headroom (in rounds) to every
	// cross-worker SPSC ring (fame.SetRingSlack). Host-side tuning only;
	// excluded from TopologyHash.
	RingSlack int
	// BalanceSlackPct loosens the parallel partitioner's balance cap by
	// this percentage, trading worker balance for link co-location
	// (fame.SetBalanceSlackPct). Host-side tuning only; excluded from
	// TopologyHash.
	BalanceSlackPct int
}

// Cluster is a deployed simulation: the token-level runner plus handles to
// every simulated component and the host-platform plan.
type Cluster struct {
	// Runner advances target time.
	Runner *fame.Runner
	// Servers lists the simulated nodes in assignment order.
	Servers []*softstack.Node
	// Switches lists every switch model, root first.
	Switches []*switchmodel.Switch
	// Deployment is the EC2 bill of materials for this simulation.
	Deployment *hostplatform.Deployment
	// Images are the FPGA images the build flow produced.
	Images []Image
	// LinkLatency is the deployed link latency in cycles.
	LinkLatency clock.Cycles
	// Faults is the deterministic fault schedule wired into this
	// simulation, or nil when fault injection is disabled.
	Faults *faults.Plan
	// TopoHash is the structural identity of this deployment (see
	// TopologyHash); checkpoints carry it so a restore into a different
	// target is refused.
	TopoHash uint64

	byName map[string]*softstack.Node
}

// NodeByName returns the named server, or nil.
func (c *Cluster) NodeByName(name string) *softstack.Node { return c.byName[name] }

// RunFor advances the whole simulation by at least the given number of
// target cycles, rounded up to a whole number of batches (the runner can
// only advance in Step()-sized quanta). Asking for zero or negative
// cycles is a caller bug and errors instead of silently doing nothing.
func (c *Cluster) RunFor(cycles clock.Cycles) error {
	if cycles <= 0 {
		return fmt.Errorf("manager: RunFor(%d): cycle count must be positive", cycles)
	}
	step := c.Runner.Step()
	if rem := cycles % step; rem != 0 {
		cycles += step - rem
	}
	return c.Runner.Run(cycles)
}

// RunUntil advances in strides of four batches until pred returns true
// or maxCycles elapse, reporting whether pred was satisfied. The final
// stride is clamped so the simulation never advances past maxCycles.
func (c *Cluster) RunUntil(pred func() bool, maxCycles clock.Cycles) (bool, error) {
	step := c.Runner.Step()
	stride := step * 4
	for c.Runner.Cycle() < maxCycles {
		if pred() {
			return true, nil
		}
		rem := maxCycles - c.Runner.Cycle()
		n := stride
		if n > rem {
			n = rem - rem%step
			if n <= 0 {
				break
			}
		}
		if err := c.Runner.Run(n); err != nil {
			return false, err
		}
	}
	return pred(), nil
}

// normalizeConfig fills DeployConfig defaults; Deploy and the partition
// builders must agree on them, so they share this.
func normalizeConfig(cfg DeployConfig) DeployConfig {
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 6400 // 2 us at 3.2 GHz
	}
	if cfg.SwitchingLatency == 0 {
		cfg.SwitchingLatency = switchmodel.DefaultSwitchingLatency
	}
	if cfg.Freq == 0 {
		cfg.Freq = clock.DefaultTargetClock
	}
	return cfg
}

// NodeIdentity is the deterministic identity pass 1 assigns to one
// server: everything any process needs to know about the server —
// locally instantiated or not — to build MAC tables, ARP entries and
// workload destination rings that agree across a partitioned deployment.
type NodeIdentity struct {
	Spec  *ServerNode
	Index int // assignment (depth-first) order
	Name  string
	MAC   ethernet.MAC
	IP    ethernet.IP
	Seed  uint64
	Cores int
	// Node is the instantiated model, nil for servers some other process
	// hosts.
	Node *softstack.Node
}

// instantiate creates the server model for this identity.
func (id *NodeIdentity) instantiate(cfg DeployConfig) *softstack.Node {
	id.Node = softstack.NewNode(softstack.Config{
		Name:  id.Name,
		MAC:   id.MAC,
		IP:    id.IP,
		Cores: id.Cores,
		Freq:  cfg.Freq,
		Costs: cfg.Costs,
		Seed:  id.Seed,
	})
	return id.Node
}

// topoIdentities is the output of the shared assignment passes: server
// identities in depth-first order, the ARP map, and per-subtree MAC
// lists for switch MAC-table construction. It is pure metadata — no
// simulation component is instantiated — so a partition builder can run
// the passes over the FULL topology and then instantiate only its slice,
// with names, MACs, IPs and seeds identical to a whole-cluster Deploy.
type topoIdentities struct {
	servers     []*NodeIdentity
	bySpec      map[*ServerNode]*NodeIdentity
	macs        []ethernet.MAC
	arp         map[ethernet.IP]ethernet.MAC
	subtreeMACs map[TopoNode][]ethernet.MAC
}

// assignIdentities is pass 1: depth-first server identity assignment, so
// MAC/IP assignment is stable under topology edits elsewhere in the
// tree. Empty server names are filled in on the spec tree itself (the
// names are part of the deployment's identity).
func assignIdentities(root *SwitchNode, cfg DeployConfig) *topoIdentities {
	ids := &topoIdentities{
		bySpec:      make(map[*ServerNode]*NodeIdentity),
		arp:         make(map[ethernet.IP]ethernet.MAC),
		subtreeMACs: make(map[TopoNode][]ethernet.MAC),
	}
	idx := 0
	var assign func(t TopoNode)
	assign = func(t TopoNode) {
		switch v := t.(type) {
		case *SwitchNode:
			for _, d := range v.Downlinks {
				assign(d)
			}
		case *ServerNode:
			mac := ethernet.MAC(0x0200_0000_0000) + ethernet.MAC(idx+1)
			ip := ethernet.IP(0x0a00_0000) + ethernet.IP(idx+1)
			if v.Name == "" {
				v.Name = fmt.Sprintf("server%d", idx)
			}
			cores, _ := v.Type.Cores()
			id := &NodeIdentity{
				Spec:  v,
				Index: idx,
				Name:  v.Name,
				MAC:   mac,
				IP:    ip,
				Seed:  cfg.Seed + uint64(idx)*0x9e37,
				Cores: cores,
			}
			ids.bySpec[v] = id
			ids.servers = append(ids.servers, id)
			ids.macs = append(ids.macs, mac)
			ids.arp[ip] = mac
			idx++
		}
	}
	assign(root)

	var collectMACs func(t TopoNode) []ethernet.MAC
	collectMACs = func(t TopoNode) []ethernet.MAC {
		if m, ok := ids.subtreeMACs[t]; ok {
			return m
		}
		var out []ethernet.MAC
		switch v := t.(type) {
		case *ServerNode:
			out = []ethernet.MAC{ids.bySpec[v].MAC}
		case *SwitchNode:
			for _, d := range v.Downlinks {
				out = append(out, collectMACs(d)...)
			}
		}
		ids.subtreeMACs[t] = out
		return out
	}
	collectMACs(root)
	return ids
}

// assignSwitchNames fills empty switch names in pre-order — the same
// order Deploy's recursive build visits them — so every process derives
// identical names from the same tree.
func assignSwitchNames(root *SwitchNode) {
	idx := 0
	var walk func(s *SwitchNode)
	walk = func(s *SwitchNode) {
		if s.Name == "" {
			s.Name = fmt.Sprintf("switch%d", idx)
		}
		idx++
		for _, d := range s.Downlinks {
			if sw, ok := d.(*SwitchNode); ok {
				walk(sw)
			}
		}
	}
	walk(root)
}

// seedStaticARP seeds the full cluster's ARP entries into the given
// nodes in a fixed order (nodes in assignment order, entries by
// ascending IP) rather than by map iteration, so every deployment of the
// same topology performs the identical sequence of operations.
func seedStaticARP(nodes []*softstack.Node, arp map[ethernet.IP]ethernet.MAC) {
	ips := make([]ethernet.IP, 0, len(arp))
	for ip := range arp {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, n := range nodes {
		for _, ip := range ips {
			n.LearnARP(ip, arp[ip])
		}
	}
}

// setMACTable installs the static MAC table for one switch: every server
// below downlink i maps to port i; everything else exits the uplink
// (uplink < 0 for the root).
func setMACTable(sw *switchmodel.Switch, s *SwitchNode, ids *topoIdentities, uplink int) {
	below := make(map[ethernet.MAC]bool)
	for i, d := range s.Downlinks {
		for _, m := range ids.subtreeMACs[d] {
			sw.MACTable().Set(m, i)
			below[m] = true
		}
	}
	if uplink >= 0 {
		for _, m := range ids.macs {
			if !below[m] {
				sw.MACTable().Set(m, uplink)
			}
		}
	}
}

// Deploy validates, builds, maps and instantiates the topology.
func Deploy(root *SwitchNode, cfg DeployConfig) (*Cluster, error) {
	if err := Validate(root); err != nil {
		return nil, err
	}
	cfg = normalizeConfig(cfg)

	farm := NewBuildFarm()
	images, err := farm.BuildAll(root, cfg.Supernode)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Images:      images,
		LinkLatency: cfg.LinkLatency,
		byName:      make(map[string]*softstack.Node),
		Runner:      fame.NewRunner(),
	}
	if err := c.Runner.SetWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	c.Runner.SetMultiplexed(cfg.Multiplexed)
	if err := c.Runner.SetRingSlack(cfg.RingSlack); err != nil {
		return nil, err
	}
	if err := c.Runner.SetBalanceSlackPct(cfg.BalanceSlackPct); err != nil {
		return nil, err
	}

	// Pass 1 (shared with the partition builders): deterministic server
	// identities over the full tree, then instantiate every one.
	ids := assignIdentities(root, cfg)
	for _, id := range ids.servers {
		id.instantiate(cfg)
	}
	if !cfg.DisableStaticARP {
		nodes := make([]*softstack.Node, len(ids.servers))
		for i, id := range ids.servers {
			nodes[i] = id.Node
		}
		seedStaticARP(nodes, ids.arp)
	}

	// Pass 2: create switches and wire everything. Each switch has one
	// port per downlink plus an uplink port (except the root).
	type swInst struct {
		spec   *SwitchNode
		sw     *switchmodel.Switch
		uplink int // uplink port index, or -1 for root
	}
	var switches []*swInst

	swIdx := 0
	var faultTargets []faults.Target
	var build func(s *SwitchNode, isRoot bool) (*swInst, error)
	build = func(s *SwitchNode, isRoot bool) (*swInst, error) {
		ports := len(s.Downlinks)
		uplink := -1
		if !isRoot {
			uplink = ports
			ports++
		}
		if s.Name == "" {
			s.Name = fmt.Sprintf("switch%d", swIdx)
		}
		swIdx++
		sw := switchmodel.New(switchmodel.Config{
			Name:             s.Name,
			Ports:            ports,
			SwitchingLatency: cfg.SwitchingLatency,
		})
		inst := &swInst{spec: s, sw: sw, uplink: uplink}
		switches = append(switches, inst)
		c.Runner.Add(sw)
		setMACTable(sw, s, ids, uplink)

		// Wire downlinks. In supernode mode, groups of up to four sibling
		// blades are FAME-5-multiplexed onto one host pipeline (one FPGA),
		// exactly the packing of Section III-A5; the composite is
		// functionally indistinguishable from the blades running
		// standalone (asserted by tests).
		type pendingServer struct {
			node *softstack.Node
			port int
		}
		var group []pendingServer
		flushGroup := func() error {
			if len(group) == 0 {
				return nil
			}
			if !cfg.Supernode || len(group) == 1 {
				for _, p := range group {
					c.Runner.Add(p.node)
					if err := c.Runner.Connect(p.node, 0, sw, p.port, cfg.LinkLatency); err != nil {
						return err
					}
					faultTargets = append(faultTargets, faults.Target{
						Name: p.node.Name(), Ports: 1, Kind: faults.NodeTarget,
					})
				}
			} else {
				eps := make([]fame.Endpoint, len(group))
				for i, p := range group {
					eps[i] = p.node
				}
				m := fame.NewMultiplex(fmt.Sprintf("%s-fpga%d", s.Name, group[0].port/4), eps...)
				c.Runner.Add(m)
				for i, p := range group {
					if err := c.Runner.Connect(m, m.PortOf(i, 0), sw, p.port, cfg.LinkLatency); err != nil {
						return err
					}
				}
				// Faults are injected at runner endpoints, so the FPGA-level
				// multiplex — not the individual blade — is the failure
				// domain in supernode mode: a NodeFreeze takes out all four
				// packed blades, like a host FPGA dying would.
				faultTargets = append(faultTargets, faults.Target{
					Name: m.Name(), Ports: m.NumPorts(), Kind: faults.NodeTarget,
				})
			}
			group = group[:0]
			return nil
		}
		for i, d := range s.Downlinks {
			switch v := d.(type) {
			case *ServerNode:
				node := ids.bySpec[v].Node
				group = append(group, pendingServer{node: node, port: i})
				if len(group) == 4 {
					if err := flushGroup(); err != nil {
						return nil, err
					}
				}
				c.Servers = append(c.Servers, node)
				c.byName[node.Name()] = node
			case *SwitchNode:
				if err := flushGroup(); err != nil {
					return nil, err
				}
				child, err := build(v, false)
				if err != nil {
					return nil, err
				}
				if err := c.Runner.Connect(child.sw, child.uplink, sw, i, cfg.LinkLatency); err != nil {
					return nil, err
				}
			}
		}
		if err := flushGroup(); err != nil {
			return nil, err
		}
		return inst, nil
	}
	if _, err := build(root, true); err != nil {
		return nil, err
	}
	for _, si := range switches {
		c.Switches = append(c.Switches, si.sw)
		faultTargets = append(faultTargets, faults.Target{
			Name: si.sw.Name(), Ports: si.sw.NumPorts(), Kind: faults.SwitchTarget,
		})
	}

	if err := c.wireFaults(cfg, faultTargets); err != nil {
		return nil, err
	}

	c.Deployment = planDeployment(root, cfg.Supernode)
	// Hash after passes 1 and 2 so auto-assigned names are included.
	c.TopoHash = TopologyHash(root, cfg)
	return c, nil
}

// wireFaults resolves the configured fault scenario into a deterministic
// plan and installs it: the plan becomes the runner's token injector and
// every switch with scheduled port stalls gets its stall hook.
func (c *Cluster) wireFaults(cfg DeployConfig, targets []faults.Target) error {
	var fcfg faults.Config
	switch {
	case cfg.FaultConfig != nil:
		fcfg = *cfg.FaultConfig
	case cfg.FaultScenario != "":
		var err error
		fcfg, err = faults.Scenario(cfg.FaultScenario, cfg.Seed, cfg.FaultHorizon)
		if err != nil {
			return err
		}
	default:
		return nil
	}
	if !fcfg.Enabled() {
		return nil
	}
	plan, err := faults.Generate(fcfg, targets)
	if err != nil {
		return err
	}
	c.Faults = plan
	c.Runner.SetInjector(plan)
	for _, sw := range c.Switches {
		if fn := plan.StallFunc(sw.Name()); fn != nil {
			sw.SetStall(fn)
		}
	}
	return nil
}

// TopologyHash digests the structural identity of a deployment — tree
// shape, component names, blade types, link latency, supernode packing —
// into a 64-bit value. The two halves of a distributed simulation pass it
// as transport.BridgeConfig.TopologyHash so the bridge handshake refuses
// to splice simulations of different targets together.
func TopologyHash(root *SwitchNode, cfg DeployConfig) uint64 {
	h := fnv.New64a()
	write := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 6400
	}
	write(fmt.Sprintf("link=%d supernode=%v", cfg.LinkLatency, cfg.Supernode))
	var walk func(t TopoNode)
	walk = func(t TopoNode) {
		switch v := t.(type) {
		case *SwitchNode:
			write("sw " + v.Name)
			for _, d := range v.Downlinks {
				walk(d)
			}
			write("end")
		case *ServerNode:
			write("srv " + v.Name + " " + string(v.Type))
		}
	}
	walk(root)
	return h.Sum64()
}

// planDeployment maps the topology onto EC2 instances: ToR switches and
// their servers go to f1.16xlarge instances (8 FPGAs each, 1 or 4 nodes
// per FPGA), while aggregation and root switch models get m4.16xlarge
// instances — the mapping of Figure 2 and Section V-C.
func planDeployment(root *SwitchNode, supernode bool) *hostplatform.Deployment {
	d := hostplatform.NewDeployment()
	nodesPerFPGA := 1
	if supernode {
		nodesPerFPGA = 4
	}
	servers := CountServers(root)
	fpgas := (servers + nodesPerFPGA - 1) / nodesPerFPGA
	if fpgas <= 2 {
		// Small experiments rent single-FPGA f1.2xlarge instances rather
		// than a mostly-idle 8-FPGA f1.16xlarge.
		d.Add(hostplatform.F1_2XLarge, fpgas)
	} else if f116 := (fpgas + 7) / 8; f116 > 0 {
		d.Add(hostplatform.F1_16XLarge, f116)
	}

	// Count switches that have at least one switch child: they cannot be
	// co-located with server FPGAs and run on m4.16xlarge hosts.
	aggLike := 0
	var walk func(t TopoNode)
	walk = func(t TopoNode) {
		if v, ok := t.(*SwitchNode); ok {
			hasSwitchChild := false
			for _, c := range v.Downlinks {
				if _, isSwitch := c.(*SwitchNode); isSwitch {
					hasSwitchChild = true
				}
				walk(c)
			}
			if hasSwitchChild {
				aggLike++
			}
		}
	}
	walk(root)
	if aggLike > 0 {
		d.Add(hostplatform.M4_16XLarge, aggLike)
	}
	return d
}
