// Package core is the top-level FireSim API: it ties the FAME-1 token
// runtime, the switch models, the modeled software stack and the
// simulation manager into the workflow a user actually follows —
// describe a topology, deploy it, treat the simulated nodes like a real
// cluster, and measure.
//
// The paper's headline workflow (Section III-B3) is three steps:
//
//  1. describe the target: switches, blades, link characteristics;
//  2. let the manager build images, map the simulation onto hosts and
//     populate MAC tables;
//  3. run workloads against the simulated cluster and collect
//     cycle-exact measurements.
//
// This package provides exactly that surface. Lower-level control —
// custom switch routers, custom endpoints, RTL-level blades — remains
// available from the underlying packages (fame, switchmodel, soc, ...).
package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/manager"
	"repro/internal/softstack"
)

// Re-exported topology vocabulary, so typical users only import core.
type (
	// Topology is a target datacenter description rooted at a switch.
	Topology = manager.SwitchNode
	// Server is one simulated blade in a topology.
	Server = manager.ServerNode
	// BladeType selects a blade configuration.
	BladeType = manager.BladeType
	// Cluster is a deployed, runnable simulation.
	Cluster = manager.Cluster
	// DeployConfig carries runtime-tunable simulation parameters.
	DeployConfig = manager.DeployConfig
)

// Blade types.
const (
	QuadCore   = manager.QuadCore
	DualCore   = manager.DualCore
	SingleCore = manager.SingleCore
)

// NewSwitch returns a switch node for topology construction.
func NewSwitch(name string) *Topology { return manager.NewSwitchNode(name) }

// NewServer returns a server blade for topology construction.
func NewServer(name string, t BladeType) *Server { return manager.NewServerNode(name, t) }

// Rack builds the most common building block: one ToR switch with n
// identical servers.
func Rack(name string, n int, blade BladeType) *Topology {
	tor := manager.NewSwitchNode(name)
	for i := 0; i < n; i++ {
		tor.AddDownlinks(manager.NewServerNode(fmt.Sprintf("%s-s%d", name, i), blade))
	}
	return tor
}

// Tree builds a uniform tree topology: fanouts lists the downlink count
// at each switch level from the root down, and the final level's
// downlinks are servers. Tree([]int{4, 8, 32}, QuadCore) is the paper's
// 1024-node datacenter: a root over 4 aggregation switches, 8 ToRs each,
// 32 servers per ToR.
func Tree(fanouts []int, blade BladeType) (*Topology, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("core: Tree needs at least one level")
	}
	var build func(level int, name string) *Topology
	build = func(level int, name string) *Topology {
		sw := manager.NewSwitchNode(name)
		for i := 0; i < fanouts[level]; i++ {
			child := fmt.Sprintf("%s.%d", name, i)
			if level == len(fanouts)-1 {
				sw.AddDownlinks(manager.NewServerNode(child, blade))
			} else {
				sw.AddDownlinks(build(level+1, child))
			}
		}
		return sw
	}
	return build(0, "root"), nil
}

// Deploy validates, builds and instantiates a topology. The zero
// DeployConfig gives the paper's standard parameters: a 200 Gbit/s,
// 2 us-latency network at a 3.2 GHz target clock.
func Deploy(topo *Topology, cfg DeployConfig) (*Cluster, error) {
	return manager.Deploy(topo, cfg)
}

// MeasureRate runs the cluster for the given number of target cycles and
// reports the achieved simulation rate, the metric of the paper's
// Figures 8 and 9.
func MeasureRate(c *Cluster, cycles clock.Cycles) (clock.SimRate, error) {
	cycles -= cycles % c.Runner.Step()
	return c.Runner.Measure(cycles, clock.DefaultTargetClock, false)
}

// Nodes returns the cluster's simulated servers — the paper's "users can
// then treat the simulated nodes as if they were part of a real cluster".
func Nodes(c *Cluster) []*softstack.Node { return c.Servers }
