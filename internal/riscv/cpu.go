package riscv

import (
	"fmt"

	"repro/internal/clock"
)

// Bus is the core's view of the memory system: loads, stores and fetches
// return the accessed value together with the access latency in cycles,
// driven by the cache/DRAM hierarchy or MMIO device models.
type Bus interface {
	// Fetch reads a 32-bit instruction at addr.
	Fetch(addr uint64) (word uint32, latency clock.Cycles)
	// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended into a
	// uint64.
	Load(addr uint64, size int) (value uint64, latency clock.Cycles)
	// Store writes the low size bytes of value to addr.
	Store(addr uint64, size int, value uint64) (latency clock.Cycles)
}

// Timing holds the core's fixed per-instruction costs (beyond memory
// latency), modeling the Rocket in-order single-issue pipeline.
type Timing struct {
	// Base is the cost of a simple ALU instruction.
	Base clock.Cycles
	// BranchTaken is the extra cost of a taken branch or jump (pipeline
	// redirect).
	BranchTaken clock.Cycles
	// Mul is the extra cost of a multiply.
	Mul clock.Cycles
	// Div is the extra cost of a divide/remainder.
	Div clock.Cycles
}

// DefaultTiming matches a Rocket-class in-order pipeline.
func DefaultTiming() Timing {
	return Timing{Base: 1, BranchTaken: 2, Mul: 3, Div: 20}
}

// Stats counts retired instructions by class.
type Stats struct {
	Instret  uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Traps    uint64
}

// CPU is one RV64IM hart in machine mode.
type CPU struct {
	// X is the integer register file; X[0] is hardwired to zero.
	X  [32]uint64
	PC uint64

	// CSRs.
	MStatus  uint64
	MIE      uint64
	MIP      uint64
	MTVec    uint64
	MEPC     uint64
	MCause   uint64
	MScratch uint64
	HartID   uint64

	// Cycle is the hart's cycle counter, advanced by the SoC scheduler.
	Cycle clock.Cycles

	// Halted is set by EBREAK (simulation power-off) or a trap with no
	// handler installed.
	Halted bool
	// WaitingForInterrupt is set by WFI and cleared when an interrupt
	// becomes pending.
	WaitingForInterrupt bool

	bus    Bus
	timing Timing
	stats  Stats

	// Predecode fast path (derived state, never snapshotted).
	decodeOn bool
	dec      []decEntry
	fastBus  FetchFaster // bus's optional fast-fetch view, asserted once

	// Superblock fast path (derived state, never snapshotted). Blocks
	// chain predecoded entries for threaded dispatch inside compute-only
	// windows; see superblock.go.
	sbOn       bool
	sb         []superblock
	sbVer      uint64
	sbLo, sbHi uint64 // envelope of code covered by live blocks
	sbInstret  uint64 // instructions retired via block dispatch (observability)
	winNow     *clock.Cycles // window plumbing: bus clock to advance per instruction
	winStop    *bool         // window plumbing: set by the bus mid-dispatch to exit
	spanBus    FetchSpanner  // bus's optional batched-fetch view, asserted once
	spanMask   uint64        // I-line mask for span formation (0 = spans off)
}

// New builds a hart over the given bus, starting at entry. The predecode
// fast path is on by default; SetDecodeCache(false) restores the plain
// fetch-and-crack path.
func New(bus Bus, hartID uint64, entry uint64) *CPU {
	c := &CPU{PC: entry, HartID: hartID, bus: bus, timing: DefaultTiming(), decodeOn: true, sbOn: true}
	c.fastBus, _ = bus.(FetchFaster)
	if sp, ok := bus.(FetchSpanner); ok {
		if lb := sp.ILineBytes(); lb >= 4 && lb&(lb-1) == 0 {
			c.spanBus = sp
			c.spanMask = ^(lb - 1)
		}
	}
	return c
}

// Stats returns a snapshot of the instruction counters.
func (c *CPU) Stats() Stats { return c.stats }

// SetTiming overrides the pipeline timing model. Built superblocks embed
// span costs derived from the old timing, so they are dropped.
func (c *CPU) SetTiming(t Timing) {
	c.timing = t
	c.killBlocksAll()
}

// SetExternalInterrupt drives the machine external interrupt pending bit
// (wired from the NIC and block device interrupt lines).
func (c *CPU) SetExternalInterrupt(pending bool) {
	if pending {
		c.MIP |= MIPMEIP
		c.WaitingForInterrupt = false
	} else {
		c.MIP &^= MIPMEIP
	}
}

func sext(v uint64, bits uint) uint64 {
	shift := 64 - bits
	return uint64(int64(v<<shift) >> shift)
}

// interruptPending reports whether an enabled machine interrupt is
// pending.
func (c *CPU) interruptPending() bool {
	return c.MStatus&MStatusMIE != 0 && c.MIE&c.MIP&MIPMEIP != 0
}

// trap enters the machine trap handler.
func (c *CPU) trap(cause uint64, epc uint64) clock.Cycles {
	c.stats.Traps++
	if c.MTVec == 0 {
		// No handler installed: treat as fatal, like a bare-metal harness
		// spinning in the weeds.
		c.Halted = true
		return c.timing.Base
	}
	c.MEPC = epc
	c.MCause = cause
	// mstatus.MPIE <- MIE; MIE <- 0
	if c.MStatus&MStatusMIE != 0 {
		c.MStatus |= MStatusMPIE
	} else {
		c.MStatus &^= MStatusMPIE
	}
	c.MStatus &^= MStatusMIE
	c.PC = c.MTVec
	return c.timing.Base + c.timing.BranchTaken
}

// Step executes one instruction (or takes one interrupt), returning the
// number of cycles it consumed. Calling Step on a halted core returns 0.
func (c *CPU) Step() clock.Cycles {
	if c.Halted {
		return 0
	}
	if c.interruptPending() {
		c.WaitingForInterrupt = false
		return c.trap(CauseExternalIntr, c.PC)
	}
	if c.WaitingForInterrupt {
		// Idle cycle; WFI burns time until an interrupt arrives.
		return 1
	}

	word, fetchLat, ent, predecoded := c.fetchPredecode()
	var op, rd, rs1, rs2, f3, f7 uint32
	var imm uint64
	if predecoded {
		op, rd, rs1, rs2, f3, f7, imm = ent.op, ent.rd, ent.rs1, ent.rs2, ent.f3, ent.f7, ent.imm
	} else {
		op = word & 0x7f
		rd = word >> 7 & 0x1f
		rs1 = word >> 15 & 0x1f
		rs2 = word >> 20 & 0x1f
		f3 = word >> 12 & 7
		f7 = word >> 25
		imm = crackImm(op, word)
		if ent != nil {
			*ent = decEntry{pc: c.PC, imm: imm, word: word, valid: true,
				op: op, rd: rd, rs1: rs1, rs2: rs2, f3: f3, f7: f7}
		}
	}
	return c.exec1(word, op, rd, rs1, rs2, f3, f7, imm, fetchLat)
}

// crackImm extracts the immediate for op from word, in the exact form the
// executor consumes. Instructions without a (pre-extractable) immediate
// yield 0.
func crackImm(op, word uint32) uint64 {
	switch op {
	case opLUI, opAUIPC:
		return sext(uint64(word&0xfffff000), 32)
	case opJAL:
		return decodeJImm(word)
	case opJALR, opLoad, opImm, opImm32:
		return sext(uint64(word>>20), 12)
	case opBranch:
		return decodeBImm(word)
	case opStore:
		return decodeSImm(word)
	}
	return 0
}

// exec1 executes one already-cracked instruction: the shared semantic core
// behind both Step and the superblock dispatcher, so the fast path cannot
// drift from the slow one. The caller has fetched the word (fetchLat is
// that fetch's stall) and cracked op/rd/rs1/rs2/f3/f7/imm (crackImm).
func (c *CPU) exec1(word, op, rd, rs1, rs2, f3, f7 uint32, imm uint64, fetchLat clock.Cycles) clock.Cycles {
	cost := c.timing.Base + fetchLat
	nextPC := c.PC + 4

	r1 := c.X[rs1]
	r2 := c.X[rs2]
	var wb uint64
	writeback := false

	switch op {
	case opLUI:
		wb, writeback = imm, true
	case opAUIPC:
		wb, writeback = c.PC+imm, true
	case opJAL:
		wb, writeback = nextPC, true
		nextPC = c.PC + imm
		cost += c.timing.BranchTaken
	case opJALR:
		wb, writeback = nextPC, true
		nextPC = (r1 + imm) &^ 1
		cost += c.timing.BranchTaken
	case opBranch:
		c.stats.Branches++
		taken := false
		switch f3 {
		case 0:
			taken = r1 == r2
		case 1:
			taken = r1 != r2
		case 4:
			taken = int64(r1) < int64(r2)
		case 5:
			taken = int64(r1) >= int64(r2)
		case 6:
			taken = r1 < r2
		case 7:
			taken = r1 >= r2
		default:
			return c.illegal(word)
		}
		if taken {
			nextPC = c.PC + imm
			cost += c.timing.BranchTaken
		}
	case opLoad:
		c.stats.Loads++
		addr := r1 + imm
		var v uint64
		var lat clock.Cycles
		switch f3 {
		case 0:
			v, lat = c.bus.Load(addr, 1)
			v = sext(v, 8)
		case 1:
			v, lat = c.bus.Load(addr, 2)
			v = sext(v, 16)
		case 2:
			v, lat = c.bus.Load(addr, 4)
			v = sext(v, 32)
		case 3:
			v, lat = c.bus.Load(addr, 8)
		case 4:
			v, lat = c.bus.Load(addr, 1)
		case 5:
			v, lat = c.bus.Load(addr, 2)
		case 6:
			v, lat = c.bus.Load(addr, 4)
		default:
			return c.illegal(word)
		}
		wb, writeback = v, true
		cost += lat
	case opStore:
		c.stats.Stores++
		addr := r1 + imm
		var size int
		switch f3 {
		case 0:
			size = 1
		case 1:
			size = 2
		case 2:
			size = 4
		case 3:
			size = 8
		default:
			return c.illegal(word)
		}
		cost += c.bus.Store(addr, size, r2)
		// Self-modifying code: drop any predecoded entries the store may
		// have overwritten. (Stores by other agents — DMA, other harts —
		// are invalidated by the SoC, which sees every bus store.)
		if c.dec != nil {
			c.InvalidateDecode(addr, size)
		}
	case opImm:
		switch f3 {
		case 0:
			wb = r1 + imm
		case 1:
			wb = r1 << (word >> 20 & 0x3f)
		case 2:
			wb = boolTo64(int64(r1) < int64(imm))
		case 3:
			wb = boolTo64(r1 < imm)
		case 4:
			wb = r1 ^ imm
		case 5:
			sh := word >> 20 & 0x3f
			if word>>26&0x3f == 0x10 {
				wb = uint64(int64(r1) >> sh)
			} else {
				wb = r1 >> sh
			}
		case 6:
			wb = r1 | imm
		case 7:
			wb = r1 & imm
		}
		writeback = true
	case opImm32:
		switch f3 {
		case 0:
			wb = sext(r1+imm, 32)
		case 1:
			wb = sext(r1<<(word>>20&0x1f), 32)
		case 5:
			sh := word >> 20 & 0x1f
			if f7 == 0x20 {
				wb = sext(uint64(int32(r1)>>sh), 32)
			} else {
				wb = sext(uint64(uint32(r1)>>sh), 32)
			}
		default:
			return c.illegal(word)
		}
		writeback = true
	case opReg:
		if f7 == 1 {
			wb = c.mulDiv(f3, r1, r2, &cost)
		} else {
			switch f3 {
			case 0:
				if f7 == 0x20 {
					wb = r1 - r2
				} else {
					wb = r1 + r2
				}
			case 1:
				wb = r1 << (r2 & 0x3f)
			case 2:
				wb = boolTo64(int64(r1) < int64(r2))
			case 3:
				wb = boolTo64(r1 < r2)
			case 4:
				wb = r1 ^ r2
			case 5:
				if f7 == 0x20 {
					wb = uint64(int64(r1) >> (r2 & 0x3f))
				} else {
					wb = r1 >> (r2 & 0x3f)
				}
			case 6:
				wb = r1 | r2
			case 7:
				wb = r1 & r2
			}
		}
		writeback = true
	case opReg32:
		if f7 == 1 {
			wb = c.mulDiv32(f3, r1, r2, &cost)
		} else {
			switch f3 {
			case 0:
				if f7 == 0x20 {
					wb = sext(r1-r2, 32)
				} else {
					wb = sext(r1+r2, 32)
				}
			case 1:
				wb = sext(r1<<(r2&0x1f), 32)
			case 5:
				if f7 == 0x20 {
					wb = sext(uint64(int32(r1)>>(r2&0x1f)), 32)
				} else {
					wb = sext(uint64(uint32(r1)>>(r2&0x1f)), 32)
				}
			default:
				return c.illegal(word)
			}
		}
		writeback = true
	case opFence:
		// Plain FENCE is an ordering no-op on this single-hart model.
		// FENCE.I (f3=1) synchronises the instruction stream with prior
		// stores: the predecode cache must be rebuilt from memory.
		if f3 == 1 {
			c.InvalidateDecodeAll()
		}
	case opSystem:
		sysImm := word >> 20
		switch {
		case f3 == 0 && sysImm == 0: // ECALL
			return c.trap(CauseECall, c.PC)
		case f3 == 0 && sysImm == 1: // EBREAK: simulation power-off
			c.Halted = true
		case f3 == 0 && sysImm == 0x105: // WFI
			if !c.interruptPending() && c.MIP&c.MIE == 0 {
				c.WaitingForInterrupt = true
			}
		case f3 == 0 && sysImm == 0x302: // MRET
			if c.MStatus&MStatusMPIE != 0 {
				c.MStatus |= MStatusMIE
			} else {
				c.MStatus &^= MStatusMIE
			}
			c.MStatus |= MStatusMPIE
			nextPC = c.MEPC
			cost += c.timing.BranchTaken
		case f3 >= 1 && f3 <= 3: // CSRRW/CSRRS/CSRRC
			csr := sysImm
			old := c.readCSR(csr)
			var nv uint64
			switch f3 {
			case 1:
				nv = r1
			case 2:
				nv = old | r1
			case 3:
				nv = old &^ r1
			}
			if f3 == 1 || rs1 != 0 {
				c.writeCSR(csr, nv)
			}
			wb, writeback = old, true
		default:
			return c.illegal(word)
		}
	default:
		return c.illegal(word)
	}

	if writeback && rd != 0 {
		c.X[rd] = wb
	}
	c.X[0] = 0
	c.PC = nextPC
	c.stats.Instret++
	return cost
}

func (c *CPU) illegal(word uint32) clock.Cycles {
	panic(fmt.Sprintf("riscv: illegal instruction %#08x at pc %#x", word, c.PC))
}

func (c *CPU) mulDiv(f3 uint32, r1, r2 uint64, cost *clock.Cycles) uint64 {
	switch f3 {
	case 0:
		*cost += c.timing.Mul
		return r1 * r2
	case 1: // MULH
		*cost += c.timing.Mul
		return mulh(int64(r1), int64(r2))
	case 2: // MULHSU
		*cost += c.timing.Mul
		return mulhsu(int64(r1), r2)
	case 3: // MULHU
		*cost += c.timing.Mul
		return mulhu(r1, r2)
	case 4: // DIV
		*cost += c.timing.Div
		if r2 == 0 {
			return ^uint64(0)
		}
		if int64(r1) == -1<<63 && int64(r2) == -1 {
			return r1
		}
		return uint64(int64(r1) / int64(r2))
	case 5: // DIVU
		*cost += c.timing.Div
		if r2 == 0 {
			return ^uint64(0)
		}
		return r1 / r2
	case 6: // REM
		*cost += c.timing.Div
		if r2 == 0 {
			return r1
		}
		if int64(r1) == -1<<63 && int64(r2) == -1 {
			return 0
		}
		return uint64(int64(r1) % int64(r2))
	default: // REMU
		*cost += c.timing.Div
		if r2 == 0 {
			return r1
		}
		return r1 % r2
	}
}

func (c *CPU) mulDiv32(f3 uint32, r1, r2 uint64, cost *clock.Cycles) uint64 {
	a, b := int32(r1), int32(r2)
	switch f3 {
	case 0: // MULW
		*cost += c.timing.Mul
		return sext(uint64(uint32(a*b)), 32)
	case 4: // DIVW
		*cost += c.timing.Div
		if b == 0 {
			return ^uint64(0)
		}
		if a == -1<<31 && b == -1 {
			return sext(uint64(uint32(a)), 32)
		}
		return sext(uint64(uint32(a/b)), 32)
	case 5: // DIVUW
		*cost += c.timing.Div
		if uint32(b) == 0 {
			return ^uint64(0)
		}
		return sext(uint64(uint32(r1)/uint32(r2)), 32)
	case 6: // REMW
		*cost += c.timing.Div
		if b == 0 {
			return sext(uint64(uint32(a)), 32)
		}
		if a == -1<<31 && b == -1 {
			return 0
		}
		return sext(uint64(uint32(a%b)), 32)
	case 7: // REMUW
		*cost += c.timing.Div
		if uint32(b) == 0 {
			return sext(uint64(uint32(r1)), 32)
		}
		return sext(uint64(uint32(r1)%uint32(r2)), 32)
	default:
		c.illegal(0)
		return 0
	}
}

func mulhu(a, b uint64) uint64 {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	lo := aLo * bLo
	mid1 := aHi * bLo
	mid2 := aLo * bHi
	hi := aHi * bHi
	carry := (lo>>32 + mid1&0xffffffff + mid2&0xffffffff) >> 32
	return hi + mid1>>32 + mid2>>32 + carry
}

func mulh(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := mulhu(ua, ub), ua*ub
	if neg {
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func mulhsu(a int64, b uint64) uint64 {
	if a >= 0 {
		return mulhu(uint64(a), b)
	}
	hi, lo := mulhu(uint64(-a), b), uint64(-a)*b
	hi = ^hi
	if lo == 0 {
		hi++
	}
	return hi
}

func (c *CPU) readCSR(csr uint32) uint64 {
	switch csr {
	case CSRMStatus:
		return c.MStatus
	case CSRMIE:
		return c.MIE
	case CSRMIP:
		return c.MIP
	case CSRMTVec:
		return c.MTVec
	case CSRMEPC:
		return c.MEPC
	case CSRMCause:
		return c.MCause
	case CSRMScratch:
		return c.MScratch
	case CSRMHartID:
		return c.HartID
	case CSRCycle:
		return uint64(c.Cycle)
	default:
		return 0
	}
}

func (c *CPU) writeCSR(csr uint32, v uint64) {
	switch csr {
	case CSRMStatus:
		c.MStatus = v
	case CSRMIE:
		c.MIE = v
	case CSRMIP:
		c.MIP = v
	case CSRMTVec:
		c.MTVec = v
	case CSRMEPC:
		c.MEPC = v
	case CSRMCause:
		c.MCause = v
	case CSRMScratch:
		c.MScratch = v
	}
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func decodeBImm(w uint32) uint64 {
	imm := w>>31&1<<12 | w>>7&1<<11 | w>>25&0x3f<<5 | w>>8&0xf<<1
	return sext(uint64(imm), 13)
}

func decodeSImm(w uint32) uint64 {
	return sext(uint64(w>>25<<5|w>>7&0x1f), 12)
}

func decodeJImm(w uint32) uint64 {
	imm := w>>31&1<<20 | w>>12&0xff<<12 | w>>20&1<<11 | w>>21&0x3ff<<1
	return sext(uint64(imm), 21)
}
