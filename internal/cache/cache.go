// Package cache implements set-associative cache timing models for the
// simulated server blades (Table I: 16 KiB L1I, 16 KiB L1D, 256 KiB shared
// L2).
//
// The caches are timing models with functional passthrough: data lives in
// the DRAM model's backing store, and the caches track tags, LRU state and
// dirtiness to decide how many cycles an access costs and which DRAM
// traffic it generates. This mirrors the role cache RTL plays on the FPGA:
// what the evaluation observes is latency and memory traffic, not the bits
// in the data array.
package cache

import (
	"fmt"

	"repro/internal/clock"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in diagnostics ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in core cycles on a hit.
	HitLatency clock.Cycles
}

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns the fraction of accesses that hit.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set access counter value; higher = more recent.
	lru uint64
}

// MemLevel is the next level the cache refills from and writes back to. A
// cache's parent is either another cache or the DRAM model (adapted via a
// small shim in package soc).
type MemLevel interface {
	// AccessLine models a line-granularity transfer starting no earlier
	// than now, returning the completion cycle.
	AccessLine(now clock.Cycles, addr uint64, write bool) clock.Cycles
}

// Cache is one level of set-associative write-back, write-allocate cache.
type Cache struct {
	cfg    Config
	sets   [][]line
	nsets  uint64
	parent MemLevel
	stats  Stats
	tick   uint64 // global LRU counter
	// gen counts residency changes (refills, flushes, restores). Callers
	// holding a (set, way) handle from Lookup compare generations to know
	// whether the handle can still name the same line. Derived state only:
	// excluded from snapshots.
	gen uint64
}

// New builds a cache over the given parent level.
func New(cfg Config, parent MemLevel) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	nlines := cfg.SizeBytes / cfg.LineBytes
	if nlines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", cfg.Name, nlines, cfg.Ways))
	}
	nsets := nlines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d is not a power of two", cfg.Name, nsets))
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: uint64(nsets), parent: parent}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	return lineAddr % c.nsets, lineAddr / c.nsets
}

// AccessLine implements MemLevel so caches can stack (L1 -> L2 -> DRAM).
// It models a whole-line access.
func (c *Cache) AccessLine(now clock.Cycles, addr uint64, write bool) clock.Cycles {
	return c.Access(now, addr, write)
}

// Access models a load (write=false) or store (write=true) touching the
// line containing addr, returning its completion cycle. Stores are
// write-back write-allocate: they hit in the cache and mark the line
// dirty; dirty victims are written back to the parent on eviction.
func (c *Cache) Access(now clock.Cycles, addr uint64, write bool) clock.Cycles {
	set, tag := c.index(addr)
	ways := c.sets[set]
	c.tick++

	// Hit?
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return now + c.cfg.HitLatency
		}
	}

	// Miss: prefer an invalid way, otherwise evict the LRU way.
	c.stats.Misses++
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
	}

	t := now + c.cfg.HitLatency // tag check before going to the parent
	if ways[victim].valid && ways[victim].dirty {
		// Write back the victim line first.
		c.stats.Writebacks++
		victimAddr := (ways[victim].tag*c.nsets + set) * uint64(c.cfg.LineBytes)
		t = c.parent.AccessLine(t, victimAddr, true)
	}
	// Refill.
	lineAddr := addr / uint64(c.cfg.LineBytes) * uint64(c.cfg.LineBytes)
	t = c.parent.AccessLine(t, lineAddr, false)

	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	c.gen++
	return t
}

// Gen returns the residency generation counter. It advances whenever a
// line is filled, flushed or the cache is restored from a checkpoint, so
// any (set, way) handle obtained from Lookup is valid only while Gen is
// unchanged.
func (c *Cache) Gen() uint64 { return c.gen }

// Lookup reports whether the line holding addr is resident, and if so at
// which (set, way). It performs no state mutation — callers that want hit
// accounting must follow up with Touch.
func (c *Cache) Lookup(addr uint64) (set, way int, ok bool) {
	s, tag := c.index(addr)
	for i, w := range c.sets[s] {
		if w.valid && w.tag == tag {
			return int(s), i, true
		}
	}
	return 0, 0, false
}

// Touch replays the hit path for a known-resident (set, way) handle:
// identical LRU, dirty-bit and counter mutations to Access on a hit, and
// the identical completion cycle. The handle must come from Lookup (or a
// remembered Access hit) under the current Gen; Touch does not re-check
// the tag.
func (c *Cache) Touch(now clock.Cycles, set, way int, write bool) clock.Cycles {
	c.tick++
	ln := &c.sets[set][way]
	ln.lru = c.tick
	if write {
		ln.dirty = true
	}
	c.stats.Hits++
	return now + c.cfg.HitLatency
}

// TouchN replays k consecutive hit-path touches of one known-resident
// (set, way) handle in O(1): the global LRU counter advances by k, the
// line's lru lands on the final counter value and the hit counter gains k
// — bit-identical to k sequential Touch calls, whose intermediate states
// nothing can observe between them. Same validity contract as Touch.
func (c *Cache) TouchN(set, way, k int) {
	c.tick += uint64(k)
	c.sets[set][way].lru = c.tick
	c.stats.Hits += uint64(k)
}

// Contains reports whether the line holding addr is resident (for tests
// and invariant checks).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Flush writes back every dirty line and invalidates the cache, returning
// the completion cycle. Used by DMA-coherency-free devices in tests.
func (c *Cache) Flush(now clock.Cycles) clock.Cycles {
	t := now
	for set := range c.sets {
		for i := range c.sets[set] {
			ln := &c.sets[set][i]
			if ln.valid && ln.dirty {
				addr := (ln.tag*c.nsets + uint64(set)) * uint64(c.cfg.LineBytes)
				t = c.parent.AccessLine(t, addr, true)
				c.stats.Writebacks++
			}
			*ln = line{}
		}
	}
	c.gen++
	return t
}

// Table I geometry helpers.

// DefaultL1I returns the 16 KiB L1 instruction cache configuration.
func DefaultL1I() Config {
	return Config{Name: "L1I", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 1}
}

// DefaultL1D returns the 16 KiB L1 data cache configuration.
func DefaultL1D() Config {
	return Config{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, HitLatency: 2}
}

// DefaultL2 returns the 256 KiB shared L2 configuration.
func DefaultL2() Config {
	return Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, HitLatency: 12}
}
