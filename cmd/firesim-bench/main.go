// Command firesim-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	firesim-bench                 # run every experiment at quick scale
//	firesim-bench -full           # full (paper-sized) parameters
//	firesim-bench -exp fig5,fig7  # a subset
//	firesim-bench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment names, or 'all'")
	full := flag.Bool("full", false, "run at full (paper-sized) scale")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	sc := experiments.Scale{Quick: !*full}

	failures := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		res, err := experiments.Run(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "!! %s: %v\n", name, err)
			failures++
			continue
		}
		fmt.Printf("== %s  [%s, %.2fs]\n\n%s\n", res.Title(), name, time.Since(start).Seconds(), res.Render())
	}
	if failures > 0 {
		os.Exit(1)
	}
}
