// The shard worker runtime: one process hosting one or more partition
// units of a distributed run. A shard is deliberately stateless between
// assignments — every Assign tears down whatever was running and
// rebuilds from the spec plus the units' on-disk checkpoint stores — so
// the coordinator's recovery path and the initial start are the same
// code: assign, restore, dial, run. A shard that survives a cluster-wide
// failure is simply re-assigned into the next epoch.
package manager

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/snapshot"
	"repro/internal/transport"
)

// shardHeartbeat is how often a shard emits a Progress frame. The
// coordinator's liveness lease is a small multiple of this.
const shardHeartbeat = 25 * time.Millisecond

// shardBridgeTimeout bounds each token batch read on the shard side. It
// is far above every coordinator watchdog deadline: failures are meant
// to be detected by supervision (which actively closes the token conns,
// failing blocked reads immediately), not by healthy bridges timing out.
const shardBridgeTimeout = 30 * time.Second

// ShardConfig configures RunShard.
type ShardConfig struct {
	// ControlAddr is the coordinator's control listener.
	ControlAddr string
	// Name identifies this process in Hello and diagnostics.
	Name string
	// Log, when non-nil, receives shard lifecycle lines.
	Log func(format string, args ...any)
}

// shard is the in-process state of one worker.
type shard struct {
	cfg     ShardConfig
	conn    net.Conn
	writeMu sync.Mutex // Progress heartbeats interleave with command replies

	part   *Partition
	stores map[int]*snapshot.Store
	assign AssignMsg

	// cycle mirrors the partition's target cycle for the heartbeat
	// goroutine; the main loop updates it after every chunk.
	cycle atomic.Uint64
	// stalled marks the one-shot chaos stall as consumed.
	stalled bool
}

func (s *shard) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log("[%s] "+format, append([]any{s.cfg.Name}, args...)...)
	}
}

func (s *shard) send(typ byte, msg any) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return WriteControl(s.conn, typ, msg)
}

// RunShard connects to the coordinator and serves commands until a
// shutdown frame, a control-connection failure, or a fatal local error.
// This is the entire body of a `firesim shard` process.
func RunShard(cfg ShardConfig) error {
	conn, err := net.DialTimeout("tcp", cfg.ControlAddr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("manager: shard %s: dial control %s: %w", cfg.Name, cfg.ControlAddr, err)
	}
	defer conn.Close()
	s := &shard{cfg: cfg, conn: conn, stores: make(map[int]*snapshot.Store)}
	defer s.teardown()

	if err := s.send(msgHello, HelloMsg{Name: cfg.Name, PID: os.Getpid(), Proto: int(controlVersion)}); err != nil {
		return err
	}

	// Heartbeat: any frame renews the coordinator's liveness lease; the
	// carried cycle feeds the progress watchdog. A SIGSTOPped process
	// stops heartbeating (lease expiry); a stalled one keeps heartbeating
	// a frozen cycle (progress watchdog).
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(shardHeartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if s.send(msgProgress, ProgressMsg{Cycle: s.cycle.Load()}) != nil {
					return
				}
			}
		}
	}()

	for {
		typ, payload, err := ReadControl(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator went away; nothing left to serve
			}
			return fmt.Errorf("manager: shard %s: control read: %w", cfg.Name, err)
		}
		switch typ {
		case msgAssign:
			var m AssignMsg
			if err := decodeControl(typ, payload, &m); err != nil {
				return err
			}
			if err := s.handleAssign(m); err != nil {
				s.logf("assign epoch %d failed: %v", m.Epoch, err)
				if serr := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: err.Error(), Cycle: s.cycle.Load()}); serr != nil {
					return serr
				}
				continue
			}
			if err := s.send(msgReady, ReadyMsg{Epoch: m.Epoch, Cycle: s.cycle.Load()}); err != nil {
				return err
			}
		case msgRunTo:
			var m RunToMsg
			if err := decodeControl(typ, payload, &m); err != nil {
				return err
			}
			if err := s.handleRunTo(m); err != nil {
				s.logf("run-to %d failed: %v", m.Target, err)
				if serr := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: err.Error(), Cycle: s.cycle.Load()}); serr != nil {
					return serr
				}
				continue
			}
			done := DoneMsg{Epoch: s.assign.Epoch, Cycle: s.cycle.Load()}
			if m.Final {
				hashes, err := s.part.UnitHashes()
				if err != nil {
					if serr := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: err.Error(), Cycle: s.cycle.Load()}); serr != nil {
						return serr
					}
					continue
				}
				done.Hashes = hashes
			}
			if err := s.send(msgDone, done); err != nil {
				return err
			}
		case msgCheckpoint, msgQuiesce:
			reply := DoneMsg{Epoch: s.assign.Epoch, Cycle: s.cycle.Load()}
			if err := s.persist(); err != nil {
				if serr := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: err.Error(), Cycle: s.cycle.Load()}); serr != nil {
					return serr
				}
				continue
			}
			if err := s.send(msgDone, reply); err != nil {
				return err
			}
		case msgReport:
			reply := DoneMsg{Epoch: s.assign.Epoch, Cycle: s.cycle.Load()}
			if s.part != nil {
				hashes, err := s.part.UnitHashes()
				if err != nil {
					if serr := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: err.Error(), Cycle: s.cycle.Load()}); serr != nil {
						return serr
					}
					continue
				}
				reply.Hashes = hashes
			}
			if err := s.send(msgDone, reply); err != nil {
				return err
			}
		case msgShutdown:
			s.logf("shutdown at cycle %d", s.cycle.Load())
			return nil
		default:
			// Unknown-but-valid-framed commands are reported, not fatal:
			// a newer coordinator may speak messages this shard predates.
			if err := s.send(msgError, ErrorMsg{Epoch: s.assign.Epoch, Msg: fmt.Sprintf("unhandled command type %d", typ), Cycle: s.cycle.Load()}); err != nil {
				return err
			}
		}
	}
}

// teardown closes the current partition's token plane.
func (s *shard) teardown() {
	if s.part != nil {
		s.part.CloseBridges()
		s.part = nil
	}
	s.stores = make(map[int]*snapshot.Store)
}

// handleAssign rebuilds this shard from scratch: close the old token
// plane, build the assigned units from the spec, restore them from their
// stores (or persist a cycle-0 baseline), then dial one epoch-tagged
// token connection per unit.
func (s *shard) handleAssign(m AssignMsg) error {
	s.teardown()
	s.assign = m
	s.stalled = false

	units := make([]int, len(m.Units))
	for i, u := range m.Units {
		units[i] = u.Unit
	}
	part, err := BuildPartition(m.Spec, units, shardBridgeTimeout)
	if err != nil {
		return err
	}
	retain := m.Retain
	if retain <= 0 {
		retain = 4
	}
	stores := make(map[int]*snapshot.Store, len(m.Units))
	for _, u := range m.Units {
		st, err := snapshot.NewStore(u.StoreDir, retain)
		if err != nil {
			return err
		}
		stores[u.Unit] = st
	}

	if m.Restore {
		for _, u := range m.Units {
			data, err := stores[u.Unit].Load(m.RestoreCycle)
			if err != nil {
				return fmt.Errorf("unit %s: load checkpoint at %d: %w", UnitName(u.Unit), m.RestoreCycle, err)
			}
			got, err := part.RestoreUnit(data, u.Unit)
			if err != nil {
				return fmt.Errorf("unit %s: restore: %w", UnitName(u.Unit), err)
			}
			if got != m.RestoreCycle {
				return fmt.Errorf("unit %s: checkpoint cycle %d, assignment wants %d", UnitName(u.Unit), got, m.RestoreCycle)
			}
		}
		if err := part.Runner.SetCycle(clock.Cycles(m.RestoreCycle)); err != nil {
			return err
		}
	}
	s.part = part
	s.stores = stores
	s.cycle.Store(uint64(part.Runner.Cycle()))
	if !m.Restore {
		// Persist the cycle-0 baseline so a failure before the first
		// coordinated checkpoint can still rewind the whole cluster.
		if err := s.persist(); err != nil {
			return err
		}
	}

	for _, u := range m.Units {
		conn, err := transport.DialToken(m.TokenAddr, uint32(u.Unit), m.Epoch, 15*time.Second)
		if err != nil {
			return err
		}
		if err := part.AttachBridge(u.Unit, conn, s.cycle.Load()); err != nil {
			conn.Close()
			return err
		}
	}
	s.logf("assigned epoch %d: %d unit(s) at cycle %d (restore=%v)", m.Epoch, len(m.Units), s.cycle.Load(), m.Restore)
	return nil
}

// handleRunTo advances the partition to the target cycle in step-sized
// chunks (so the heartbeat cycle is fresh and the chaos stall can
// trigger between token windows), then persists a checkpoint generation
// at the target.
func (s *shard) handleRunTo(m RunToMsg) error {
	if s.part == nil {
		return fmt.Errorf("run-to before assign")
	}
	step := uint64(s.part.Step)
	if m.Target%step != 0 {
		return fmt.Errorf("run-to target %d not a multiple of step %d", m.Target, step)
	}
	for s.cycle.Load() < m.Target {
		if s.assign.StallAt != 0 && !s.stalled && s.cycle.Load() >= s.assign.StallAt {
			// Chaos: freeze target time while wall time (and heartbeats)
			// march on — exactly the failure mode the progress watchdog
			// exists to catch.
			s.stalled = true
			s.logf("chaos stall at cycle %d for %dms", s.cycle.Load(), s.assign.StallMs)
			time.Sleep(time.Duration(s.assign.StallMs) * time.Millisecond)
		}
		if err := s.part.RunSlice(s.part.Step); err != nil {
			return err
		}
		s.cycle.Store(uint64(s.part.Runner.Cycle()))
	}
	return s.persist()
}

// persist writes one checkpoint generation per hosted unit at the
// current cycle, through the crash-safe store (temp + fsync + rename):
// a shard killed mid-persist leaves only complete, CRC-valid
// generations behind.
func (s *shard) persist() error {
	if s.part == nil {
		return fmt.Errorf("persist before assign")
	}
	cycle := uint64(s.part.Runner.Cycle())
	for _, unit := range s.part.storeUnits() {
		st, ok := s.stores[unit]
		if !ok {
			return fmt.Errorf("unit %s: no store", UnitName(unit))
		}
		u := unit
		if err := st.Save(cycle, func(w io.Writer) error { return s.part.SaveUnit(w, u) }); err != nil {
			return fmt.Errorf("unit %s: persist at %d: %w", UnitName(unit), cycle, err)
		}
	}
	return nil
}
