// Package soc assembles the complete target server blade of Table I as a
// single FAME-1 endpoint:
//
//	1-4 RISC-V Rocket-class cores @ 3.2 GHz   (internal/riscv)
//	16 KiB L1I$ + 16 KiB L1D$ per core        (internal/cache)
//	256 KiB shared L2$                        (internal/cache)
//	16 GiB DDR3 memory                        (internal/dram)
//	200 Gbit/s Ethernet NIC                   (internal/nic)
//	Block device                              (internal/blockdev)
//	UART, power-off device, accelerator slots
//
// The blade's only token port is the NIC's top-level interface: each
// target cycle the SoC consumes one network input token and produces one
// output token, so the whole blade obeys the decoupled FAME-1 contract and
// can be dropped into any fame.Runner topology next to switch models.
package soc

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/ethernet"
	"repro/internal/nic"
	"repro/internal/riscv"
	"repro/internal/token"
)

// Memory map.
const (
	// DRAMBase is where the 16 GiB memory window begins; programs are
	// loaded and entered at DRAMBase.
	DRAMBase uint64 = 0x8000_0000
	// NICBase is the NIC MMIO window.
	NICBase uint64 = 0x6000_0000
	// BlockDevBase is the block device MMIO window.
	BlockDevBase uint64 = 0x6100_0000
	// UARTBase is the console MMIO window (write a byte to print it).
	UARTBase uint64 = 0x5400_0000
	// PowerOff halts the simulation when written, like the tohost
	// "finisher" device in RISC-V test harnesses.
	PowerOff uint64 = 0x0010_0000
	// mmioWindow is the size of each device window.
	mmioWindow uint64 = 0x1000
	// mmioLatency is the fixed cost of an uncached MMIO access.
	mmioLatency clock.Cycles = 12
)

// Device is a memory-mapped peripheral attachable to the SoC (Table II's
// accelerator slots use this interface too). Devices are passive: they
// act only under MMIO and report their interrupt line on demand, which is
// what lets the quiescent fast path skip cycles without consulting them
// beyond IntrPending.
type Device interface {
	// MMIOLoad services a read at the given offset within the device
	// window.
	MMIOLoad(now clock.Cycles, offset uint64) uint64
	// MMIOStore services a write.
	MMIOStore(now clock.Cycles, offset uint64, v uint64)
	// IntrPending reports whether the device is asserting its interrupt.
	IntrPending() bool
}

// Config describes a server blade.
type Config struct {
	// Name identifies the blade.
	Name string
	// Cores is the number of Rocket-class cores (Table I: 1 to 4).
	Cores int
	// MAC is the NIC address assigned by the manager.
	MAC ethernet.MAC
	// DRAM, L1I, L1D, L2 override the default hierarchy when non-zero.
	DRAM dram.Config
	L1I  cache.Config
	L1D  cache.Config
	L2   cache.Config
	// NICConfig overrides the default NIC parameters when non-zero.
	NICConfig nic.Config
}

// QuadCore returns the standard quad-core blade configuration used in the
// paper's cluster experiments.
func QuadCore(name string, mac ethernet.MAC) Config {
	return Config{Name: name, Cores: 4, MAC: mac}
}

// SoC is the assembled server blade.
type SoC struct {
	cfg  Config
	dram *dram.Model
	l2   *cache.Cache
	nic  *nic.NIC
	bdev *blockdev.Device

	cores []*core
	// devices holds the generic accelerator slots sorted by MMIO base:
	// decode is a binary search and iteration order is deterministic.
	devices []mmioSlot

	console []byte
	cycle   clock.Cycles
	halted  bool

	// noSkip disables the bulk quiescent-cycle fast path (default on).
	noSkip bool
	// skipped counts target cycles advanced arithmetically while the blade
	// was provably idle. Observability only — never snapshotted, so it
	// cannot perturb StateHash.
	skipped uint64
	// partIdle counts hart-cycles the partial-idle park avoided burning on
	// WFI harts while another hart kept the blade busy (observability only).
	partIdle uint64

	// Compute-only window state (see computeWindow). winBroke is shared
	// with every hart via riscv.CPU.BindWindow so an MMIO access can end a
	// superblock dispatch mid-window.
	winOn      bool
	winBroke   bool
	winStart   clock.Cycles
	winBrokeAt clock.Cycles
	active     []*core

	metrics *socMetrics
}

type mmioSlot struct {
	base uint64
	dev  Device
}

// core bundles one hart with its private L1s and bus adapter.
type core struct {
	cpu       *riscv.CPU
	bus       *coreBus
	busyUntil clock.Cycles
}

// New builds a blade. The program (raw RV64 machine code) is loaded at
// DRAMBase, where all harts begin execution; hart 0 is conventionally the
// only one released unless the program coordinates via mhartid.
func New(cfg Config, program []byte) (*SoC, error) {
	if cfg.Cores < 1 || cfg.Cores > 4 {
		return nil, fmt.Errorf("soc: %d cores outside Table I's 1-4 range", cfg.Cores)
	}
	s := &SoC{cfg: cfg}
	s.dram = dram.New(cfg.DRAM)

	l2cfg := cfg.L2
	if l2cfg.SizeBytes == 0 {
		l2cfg = cache.DefaultL2()
	}
	s.l2 = cache.New(l2cfg, dramLevel{s.dram})

	niccfg := cfg.NICConfig
	if niccfg.MAC == 0 {
		niccfg = nic.DefaultConfig(cfg.MAC)
	}
	s.nic = nic.New(niccfg, &socDMA{s: s})
	s.bdev = blockdev.New(blockdev.DefaultConfig(), &socDMA{s: s})

	for i := 0; i < cfg.Cores; i++ {
		l1i := cfg.L1I
		if l1i.SizeBytes == 0 {
			l1i = cache.DefaultL1I()
		}
		l1d := cfg.L1D
		if l1d.SizeBytes == 0 {
			l1d = cache.DefaultL1D()
		}
		b := &coreBus{
			s:          s,
			l1i:        cache.New(l1i, s.l2),
			l1d:        cache.New(l1d, s.l2),
			ilineBytes: uint64(l1i.LineBytes),
			ihitLat:    l1i.HitLatency,
		}
		if lb := uint64(l1i.LineBytes); lb > 1 && lb&(lb-1) == 0 {
			b.ilineShift = uint(bits.TrailingZeros64(lb))
		}
		c := &core{cpu: riscv.New(b, uint64(i), DRAMBase), bus: b}
		c.cpu.BindWindow(&b.now, &s.winBroke)
		s.cores = append(s.cores, c)
	}

	s.dram.WriteBytes(0, make([]byte, 0)) // touch nothing; program below
	s.loadProgram(program)
	return s, nil
}

func (s *SoC) loadProgram(program []byte) {
	s.dram.WriteBytes(0+dramOffset(DRAMBase), program)
}

func dramOffset(addr uint64) uint64 { return addr - DRAMBase }

// RegisterDevice attaches an accelerator or custom peripheral at the given
// MMIO base (must not collide with the built-in windows). The slot list
// stays sorted by base so MMIO decode is a binary search.
func (s *SoC) RegisterDevice(base uint64, dev Device) error {
	if base == NICBase || base == BlockDevBase || base == UARTBase {
		return fmt.Errorf("soc: MMIO base %#x collides with a built-in device", base)
	}
	i := sort.Search(len(s.devices), func(i int) bool { return s.devices[i].base >= base })
	if i < len(s.devices) && s.devices[i].base == base {
		return fmt.Errorf("soc: MMIO base %#x registered twice", base)
	}
	s.devices = append(s.devices, mmioSlot{})
	copy(s.devices[i+1:], s.devices[i:])
	s.devices[i] = mmioSlot{base: base, dev: dev}
	return nil
}

// deviceAt returns the registered device at exactly base, or nil.
func (s *SoC) deviceAt(base uint64) Device {
	i := sort.Search(len(s.devices), func(i int) bool { return s.devices[i].base >= base })
	if i < len(s.devices) && s.devices[i].base == base {
		return s.devices[i].dev
	}
	return nil
}

// NIC exposes the blade's NIC (for manager-side rate-limit configuration).
func (s *SoC) NIC() *nic.NIC { return s.nic }

// DMA returns a coherent DMA port into the blade's memory system (timing
// through the shared L2, data against DRAM). Accelerators attached via
// RegisterDevice use it to move operands, like RoCC units sharing the L2.
func (s *SoC) DMA() nic.Memory { return &socDMA{s: s} }

// BlockDev exposes the blade's block device (for disk provisioning).
func (s *SoC) BlockDev() *blockdev.Device { return s.bdev }

// DRAM exposes the memory model (for test setup and result extraction).
func (s *SoC) DRAM() *dram.Model { return s.dram }

// Core returns hart i's CPU state.
func (s *SoC) Core(i int) *riscv.CPU { return s.cores[i].cpu }

// Console returns everything written to the UART.
func (s *SoC) Console() string { return string(s.console) }

// Halted reports whether the blade has powered off (all harts halted or
// the power-off device written).
func (s *SoC) Halted() bool {
	if s.halted {
		return true
	}
	for _, c := range s.cores {
		if !c.cpu.Halted {
			return false
		}
	}
	return true
}

// Name implements fame.Endpoint.
func (s *SoC) Name() string { return s.cfg.Name }

// NumPorts implements fame.Endpoint: the blade's single network port.
func (s *SoC) NumPorts() int { return 1 }

// TickBatch implements fame.Endpoint. Three paths, fastest proven
// applicable wins: a fully quiescent blade advances the target clock
// arithmetically (bulk quiescent-cycle skip); a blade whose devices are
// idle but with runnable harts takes the compute-only window (superblock
// dispatch, WFI harts parked arithmetically); otherwise it ticks one
// cycle at a time: NIC token exchange, device retirement, then every
// hart. All paths are bit-identical in every checkpointed observable.
func (s *SoC) TickBatch(n int, in, out []*token.Batch) {
	switch {
	case s.canSkip(in[0]):
		s.skipQuiescent(n)
	case s.canComputeWindow(in[0]):
		s.computeWindow(n, in[0], out[0])
	default:
		s.tickCycles(n, in[0], out[0])
	}
	if s.metrics != nil {
		s.publishMetrics()
	}
}

// tickCycles is the general per-cycle path. The inbound batch is walked
// with a slot cursor (offsets are strictly increasing) instead of
// expanding it to a dense slice, so an idle window allocates nothing.
func (s *SoC) tickCycles(n int, in, out *token.Batch) {
	s.tickCycleRange(0, n, in, out)
}

// tickCycleRange ticks cycles [from, n) of the current window one at a
// time, then advances the blade clock by the full n; callers account for
// cycles [0, from) themselves (the quiescent prefix of a tripped compute
// window).
func (s *SoC) tickCycleRange(from, n int, in, out *token.Batch) {
	slots := in.Slots
	si := 0
	for si < len(slots) && int(slots[si].Offset) < from {
		si++
	}
	for i := from; i < n; i++ {
		now := s.cycle + clock.Cycles(i)
		tok := token.Empty
		if si < len(slots) && int(slots[si].Offset) == i {
			tok = slots[si].Tok
			si++
		}
		outTok := s.nic.Tick(now, tok)
		if outTok.Valid {
			out.Put(i, outTok)
		}
		s.bdev.Tick(now)
		if s.halted {
			continue
		}
		intr := s.nic.IntrPending() || s.bdev.IntrPending() || s.devIntrPending()
		for _, c := range s.cores {
			c.cpu.SetExternalInterrupt(intr)
			if now < c.busyUntil || c.cpu.Halted {
				continue
			}
			c.cpu.Cycle = now
			c.bus.now = now
			cost := c.cpu.Step()
			if cost <= 0 {
				cost = 1
			}
			c.busyUntil = now + cost
		}
	}
	s.cycle += clock.Cycles(n)
}

// canSkip reports whether a whole token window can be skipped without any
// observable difference from per-cycle ticking. The conditions are
// conservative: anything that evolves per cycle — a busy DMA tracker, an
// in-flight NIC packet, a DRAM transfer still completing, a runnable hart
// — disables the skip.
func (s *SoC) canSkip(in *token.Batch) bool {
	if s.noSkip || !in.IsEmpty() {
		return false
	}
	if !s.nic.Quiescent() || !s.bdev.Quiescent() || !s.dram.IdleAt(s.cycle) {
		return false
	}
	if s.halted {
		// Powered off: harts are never ticked, interrupts are never looked
		// at, so NIC/blockdev/DRAM idleness is the whole condition.
		return true
	}
	if s.nic.IntrPending() || s.bdev.IntrPending() || s.devIntrPending() {
		return false
	}
	for _, c := range s.cores {
		if !c.cpu.Halted && !c.cpu.WaitingForInterrupt {
			return false
		}
	}
	return true
}

// skipQuiescent reproduces n per-cycle ticks of a quiescent blade in O(1):
// the NIC replays its rate-limiter refills arithmetically, WFI harts land
// on the same cycle/busy-time a per-cycle WFI spin would have produced,
// and the external interrupt line (known deasserted) is applied once —
// idempotent, hence identical to n applications. No output token is
// produced, matching the per-cycle path on an idle blade.
func (s *SoC) skipQuiescent(n int) {
	last := s.cycle + clock.Cycles(n) - 1
	s.nic.SkipIdle(s.cycle, n)
	if !s.halted {
		for _, c := range s.cores {
			c.cpu.SetExternalInterrupt(false)
			if c.cpu.Halted || c.busyUntil > last {
				continue
			}
			c.cpu.Cycle = last
			c.bus.now = last
			c.busyUntil = last + 1
		}
	}
	s.skipped += uint64(n)
	s.cycle += clock.Cycles(n)
}

// canComputeWindow reports whether the window can run compute-only: no
// inbound tokens, NIC and block device quiescent, no interrupt pending.
// Unlike canSkip it does not require idle harts (they are what the window
// runs) or an idle DRAM (DRAM timing state is a pure function the
// per-cycle path never ticks; busy harts consult it through their caches
// exactly as the slow path would).
func (s *SoC) canComputeWindow(in *token.Batch) bool {
	if s.noSkip || !in.IsEmpty() {
		return false
	}
	if !s.nic.Quiescent() || !s.bdev.Quiescent() {
		return false
	}
	if s.halted {
		return true
	}
	return !s.nic.IntrPending() && !s.bdev.IntrPending() && !s.devIntrPending()
}

// computeWindow advances a token window whose devices are provably idle
// without the per-cycle NIC/blockdev/interrupt bookkeeping: runnable
// harts execute — through the superblock dispatcher when exactly one hart
// is runnable (multiple runnable harts stay on per-cycle stepping so
// cross-hart memory ordering is untouched), WFI harts are parked
// arithmetically exactly like skipQuiescent, and the NIC's rate-limiter
// refills are replayed in closed form. The first MMIO access (device
// windows or the power-off latch; the stateless UART excluded) trips the
// window: device state is caught up to the access cycle first, so the
// access observes exactly what the per-cycle path would have shown it,
// and the rest of the window falls back to per-cycle ticking.
func (s *SoC) computeWindow(n int, in, out *token.Batch) {
	base := s.cycle
	last := base + clock.Cycles(n) - 1
	wasHalted := s.halted
	s.winStart = base
	s.winBroke = false
	s.winOn = true

	active := s.active[:0]
	if !wasHalted {
		for _, c := range s.cores {
			// The external line is known deasserted for the whole window;
			// one idempotent clear replaces the per-cycle ones.
			c.cpu.SetExternalInterrupt(false)
			if !c.cpu.Halted && !c.cpu.WaitingForInterrupt && c.busyUntil <= last {
				active = append(active, c)
			}
		}
	}
	s.active = active

	switch len(active) {
	case 0:
		// Devices idle and no hart will run (all WFI/halted, or powered
		// off, with DRAM timing still draining): pure clock advance.
	case 1:
		c := active[0]
		now := c.busyUntil
		if now < base {
			now = base
		}
		for now <= last && !c.cpu.Halted && !c.cpu.WaitingForInterrupt {
			// Replay the per-cycle deassert at each instruction boundary: a
			// CSR write can set MEIP from software, and the slow path would
			// clear it again before the next step.
			c.cpu.SetExternalInterrupt(false)
			c.cpu.Cycle = now
			c.bus.now = now
			used := c.cpu.StepBlock(last + 1 - now)
			if used == 0 {
				cost := c.cpu.Step()
				if cost <= 0 {
					cost = 1
				}
				used = cost
			}
			now += used
			if s.winBroke {
				break
			}
		}
		c.busyUntil = now
	default:
		// Several runnable harts: keep the exact per-cycle interleave (it
		// orders cross-hart loads and stores) but skip device work.
		for i := 0; i < n; i++ {
			now := base + clock.Cycles(i)
			for _, c := range active {
				c.cpu.SetExternalInterrupt(false)
				if now < c.busyUntil || c.cpu.Halted {
					continue
				}
				c.cpu.Cycle = now
				c.bus.now = now
				cost := c.cpu.Step()
				if cost <= 0 {
					cost = 1
				}
				c.busyUntil = now + cost
			}
			if s.winBroke {
				break
			}
		}
	}
	s.winOn = false

	// Park harts that were (or went) idle: the per-cycle path burns one
	// cycle per WFI hart per cycle, landing on Cycle=upTo,
	// busyUntil=upTo+1 by the end of the executed prefix of the window.
	upTo := last
	if s.winBroke {
		upTo = s.winBrokeAt
	}
	if !wasHalted {
		for _, c := range s.cores {
			if c.cpu.Halted || !c.cpu.WaitingForInterrupt || c.busyUntil > upTo {
				continue
			}
			from := c.busyUntil
			if from < base {
				from = base
			}
			s.partIdle += uint64(upTo + 1 - from)
			c.cpu.Cycle = upTo
			c.bus.now = upTo
			c.busyUntil = upTo + 1
		}
	}

	if s.winBroke {
		// The trip already replayed NIC refills through winBrokeAt; finish
		// the window per-cycle from the next cycle (the inbound batch is
		// empty, so the resumed slot cursor finds nothing).
		s.tickCycleRange(int(s.winBrokeAt-base)+1, n, in, out)
		return
	}
	s.nic.SkipIdle(base, n)
	s.cycle += clock.Cycles(n)
}

// tripFastWindow ends a compute-only window at the cycle of the MMIO
// access breaking it. NIC state is caught up first — the per-cycle path
// runs nic.Tick for cycle t before any hart steps at t, so the access
// must observe post-tick state. The block device needs no catch-up: its
// quiescent Tick is stateless, which is the same fact skipQuiescent
// already relies on.
func (s *SoC) tripFastWindow(now clock.Cycles) {
	if !s.winOn || s.winBroke {
		return
	}
	s.winBroke = true
	s.winBrokeAt = now
	s.nic.SkipIdle(s.winStart, int(now-s.winStart)+1)
}

func (s *SoC) devIntrPending() bool {
	for i := range s.devices {
		if s.devices[i].dev.IntrPending() {
			return true
		}
	}
	return false
}

// --- fast-path toggles (all default on) ---

// SetQuiescentSkip toggles the bulk idle-cycle fast path.
func (s *SoC) SetQuiescentSkip(on bool) { s.noSkip = !on }

// SetFetchMemo toggles every hart's fetch-line memo in the core bus.
func (s *SoC) SetFetchMemo(on bool) {
	for _, c := range s.cores {
		c.bus.memoOff = !on
		c.bus.fetchValid = false
		c.bus.fetch2Valid = false
	}
}

// SetDecodeCache toggles every hart's predecoded instruction cache.
func (s *SoC) SetDecodeCache(on bool) {
	for _, c := range s.cores {
		c.cpu.SetDecodeCache(on)
	}
}

// SetSuperblocks toggles every hart's superblock dispatcher (used inside
// compute-only windows when exactly one hart is runnable).
func (s *SoC) SetSuperblocks(on bool) {
	for _, c := range s.cores {
		c.cpu.SetSuperblocks(on)
	}
}

// SkippedCycles reports how many target cycles the quiescent fast path
// has skipped so far (observability only; excluded from snapshots).
func (s *SoC) SkippedCycles() uint64 { return s.skipped }

// PartialIdleCycles reports how many WFI hart-cycles the compute-only
// window parked arithmetically instead of burning one at a time
// (observability only; excluded from snapshots).
func (s *SoC) PartialIdleCycles() uint64 { return s.partIdle }

// SuperblockInstret sums instructions retired through superblock dispatch
// across all harts (observability only).
func (s *SoC) SuperblockInstret() uint64 {
	var total uint64
	for _, c := range s.cores {
		total += c.cpu.SuperblockInstret()
	}
	return total
}

// InstretTotal sums retired instructions across all harts.
func (s *SoC) InstretTotal() uint64 {
	var total uint64
	for _, c := range s.cores {
		total += c.cpu.Stats().Instret
	}
	return total
}

// invalidateDecode drops predecoded entries covering [addr, addr+n) on
// every hart: a store by any agent (another hart, NIC/blockdev DMA) may
// overwrite code some hart has predecoded.
func (s *SoC) invalidateDecode(addr uint64, n int) {
	for _, c := range s.cores {
		c.cpu.InvalidateDecode(addr, n)
	}
}

// --- memory system plumbing ---

// dramLevel adapts the DRAM model to the cache.MemLevel interface.
type dramLevel struct {
	m *dram.Model
}

func (d dramLevel) AccessLine(now clock.Cycles, addr uint64, write bool) clock.Cycles {
	return d.m.Access(now, addr, write)
}

// socDMA is the NIC/blockdev DMA port: functional data moves against the
// DRAM backing store while timing goes through the shared L2 at line
// granularity with pipelined issue (one line per cycle), which is what
// bounds the bare-metal NIC experiment at the DDR3 streaming rate.
type socDMA struct {
	s *SoC
}

func (d *socDMA) ReadDMA(now clock.Cycles, addr uint64, buf []byte) clock.Cycles {
	d.s.dram.ReadBytes(dramOffset(addr), buf)
	return d.timeLines(now, addr, len(buf), false)
}

func (d *socDMA) WriteDMA(now clock.Cycles, addr uint64, data []byte) clock.Cycles {
	d.s.dram.WriteBytes(dramOffset(addr), data)
	d.s.invalidateDecode(addr, len(data))
	return d.timeLines(now, addr, len(data), true)
}

func (d *socDMA) timeLines(now clock.Cycles, addr uint64, n int, write bool) clock.Cycles {
	const line = 64
	start := addr &^ (line - 1)
	end := (addr + uint64(n) + line - 1) &^ (line - 1)
	done := now
	issue := now
	for a := start; a < end; a += line {
		t := d.s.l2.AccessLine(issue, dramOffset(a), write)
		if t > done {
			done = t
		}
		issue++ // pipelined: one line issued per cycle
	}
	return done
}

// coreBus is one hart's view of the address space: cached DRAM plus
// uncached MMIO windows.
type coreBus struct {
	s   *SoC
	l1i *cache.Cache
	l1d *cache.Cache
	now clock.Cycles

	// Fetch-line memo: remembers where in the L1I the last-fetched line
	// sits so sequential fetches within one line skip the full set scan.
	// Validity is guarded by the cache's residency generation, which
	// advances on every refill/flush/restore.
	memoOff    bool
	fetchValid bool
	fetchLine  uint64
	fetchSet   int
	fetchWay   int
	fetchGen   uint64
	// Second memo entry (the previously fetched line). A loop whose body
	// straddles a line boundary alternates between two lines every lap;
	// with a single entry each crossing pays a full set scan.
	fetch2Valid bool
	fetch2Line  uint64
	fetch2Set   int
	fetch2Way   int
	fetch2Gen   uint64
	ilineBytes  uint64
	ilineShift uint // log2(ilineBytes) when it is a power of two, else 0
	ihitLat    clock.Cycles
}

// lineIndex maps a DRAM offset to its I-line index, by shift when the
// line size is a power of two (the hot fetch path; a 64-bit divide is an
// order of magnitude slower than a shift on most hosts).
func (b *coreBus) lineIndex(off uint64) uint64 {
	if b.ilineShift != 0 {
		return off >> b.ilineShift
	}
	return off / b.ilineBytes
}

// L1I exposes the instruction cache for stats.
func (b *coreBus) L1I() *cache.Cache { return b.l1i }

// L1D exposes the data cache for stats.
func (b *coreBus) L1D() *cache.Cache { return b.l1d }

// Fetch implements riscv.Bus.
func (b *coreBus) Fetch(addr uint64) (uint32, clock.Cycles) {
	if addr < DRAMBase {
		panic(fmt.Sprintf("soc: instruction fetch outside DRAM at %#x", addr))
	}
	off := dramOffset(addr)
	done := b.fetchTiming(off)
	var v uint32
	if x, ok := b.s.dram.LoadLE(off, 4); ok {
		v = uint32(x)
	} else {
		var w [4]byte
		b.s.dram.ReadBytes(off, w[:])
		v = uint32(w[0]) | uint32(w[1])<<8 | uint32(w[2])<<16 | uint32(w[3])<<24
	}
	// Hit latency 1 is already the pipeline's steady state; report only
	// the cycles beyond a hit as stall.
	lat := done - b.now - b.ihitLat
	if lat < 0 {
		lat = 0
	}
	return v, lat
}

// fetchTiming charges the L1I for a fetch at off. When either memo entry
// proves the line still resident at the remembered way (same residency
// generation), Touch replays the hit path without the set scan; otherwise
// the full Access runs and the memo is refreshed — after Access the line
// is always resident, so Lookup cannot fail.
func (b *coreBus) fetchTiming(off uint64) clock.Cycles {
	if b.memoOff {
		return b.l1i.Access(b.now, off, false)
	}
	line := b.lineIndex(off)
	if b.fetchValid && line == b.fetchLine && b.fetchGen == b.l1i.Gen() {
		return b.l1i.Touch(b.now, b.fetchSet, b.fetchWay, false)
	}
	if b.fetch2Valid && line == b.fetch2Line && b.fetch2Gen == b.l1i.Gen() {
		b.swapFetchMemo()
		return b.l1i.Touch(b.now, b.fetchSet, b.fetchWay, false)
	}
	done := b.l1i.Access(b.now, off, false)
	if set, way, ok := b.l1i.Lookup(off); ok {
		b.demoteFetchMemo()
		b.fetchLine, b.fetchSet, b.fetchWay = line, set, way
		b.fetchGen = b.l1i.Gen()
		b.fetchValid = true
	}
	return done
}

// swapFetchMemo promotes the secondary memo entry to primary (MRU order).
func (b *coreBus) swapFetchMemo() {
	b.fetchValid, b.fetch2Valid = b.fetch2Valid, b.fetchValid
	b.fetchLine, b.fetch2Line = b.fetch2Line, b.fetchLine
	b.fetchSet, b.fetch2Set = b.fetch2Set, b.fetchSet
	b.fetchWay, b.fetch2Way = b.fetch2Way, b.fetchWay
	b.fetchGen, b.fetch2Gen = b.fetch2Gen, b.fetchGen
}

// demoteFetchMemo moves the primary memo entry to the secondary slot
// ahead of the primary being overwritten with a fresh line.
func (b *coreBus) demoteFetchMemo() {
	b.fetch2Valid = b.fetchValid
	b.fetch2Line = b.fetchLine
	b.fetch2Set = b.fetchSet
	b.fetch2Way = b.fetchWay
	b.fetch2Gen = b.fetchGen
}

// FetchFast implements riscv.FetchFaster: when the line holding addr is
// provably still resident in the L1I at the memoized way, replay the
// fetch timing — cache metadata mutations included — without the
// functional read (the caller already holds the instruction word).
// Returning ok=false performs no side effects.
func (b *coreBus) FetchFast(addr uint64) (clock.Cycles, bool) {
	if b.memoOff || addr < DRAMBase {
		return 0, false
	}
	off := dramOffset(addr)
	line := b.lineIndex(off)
	if !b.fetchValid || line != b.fetchLine || b.fetchGen != b.l1i.Gen() {
		if !b.fetch2Valid || line != b.fetch2Line || b.fetch2Gen != b.l1i.Gen() {
			return 0, false
		}
		b.swapFetchMemo()
	}
	done := b.l1i.Touch(b.now, b.fetchSet, b.fetchWay, false)
	lat := done - b.now - b.ihitLat
	if lat < 0 {
		lat = 0
	}
	return lat, true
}

// FetchSpan implements riscv.FetchSpanner: replay k consecutive same-line
// instruction fetches starting at addr in O(1) when the line is provably
// resident at a memoized way. The batched TouchN is bit-identical to k
// sequential Touch calls, and each fetch's reported stall is zero (the
// hit path always is: done - now - ihitLat == 0). Returning false
// performs no side effects.
func (b *coreBus) FetchSpan(addr uint64, k int) bool {
	if b.memoOff || addr < DRAMBase {
		return false
	}
	off := dramOffset(addr)
	line := b.lineIndex(off)
	if !b.fetchValid || line != b.fetchLine || b.fetchGen != b.l1i.Gen() {
		if !b.fetch2Valid || line != b.fetch2Line || b.fetch2Gen != b.l1i.Gen() {
			return false
		}
		b.swapFetchMemo()
	}
	b.l1i.TouchN(b.fetchSet, b.fetchWay, k)
	return true
}

// ILineBytes implements riscv.FetchSpanner: the instruction-line size,
// used at superblock build time to chunk fetch spans by line.
func (b *coreBus) ILineBytes() uint64 { return b.ilineBytes }

// Load implements riscv.Bus.
func (b *coreBus) Load(addr uint64, size int) (uint64, clock.Cycles) {
	if dev, off, ok := b.s.decodeMMIO(addr); ok {
		b.s.tripFastWindow(b.now)
		return dev.MMIOLoad(b.now, off), mmioLatency
	}
	if addr < DRAMBase {
		panic(fmt.Sprintf("soc: load outside DRAM at %#x", addr))
	}
	off := dramOffset(addr)
	done := b.l1d.Access(b.now, off, false)
	v, ok := b.s.dram.LoadLE(off, size)
	if !ok {
		// Chunk-straddling access: stage through a buffer.
		buf := make([]byte, size)
		b.s.dram.ReadBytes(off, buf)
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
	}
	return v, done - b.now
}

// Store implements riscv.Bus.
func (b *coreBus) Store(addr uint64, size int, v uint64) clock.Cycles {
	if addr == PowerOff {
		b.s.tripFastWindow(b.now)
		b.s.halted = true
		return 1
	}
	if dev, off, ok := b.s.decodeMMIO(addr); ok {
		b.s.tripFastWindow(b.now)
		dev.MMIOStore(b.now, off, v)
		return mmioLatency
	}
	if addr >= UARTBase && addr < UARTBase+mmioWindow {
		b.s.console = append(b.s.console, byte(v))
		return mmioLatency
	}
	if addr < DRAMBase {
		panic(fmt.Sprintf("soc: store outside DRAM at %#x", addr))
	}
	off := dramOffset(addr)
	done := b.l1d.Access(b.now, off, true)
	if !b.s.dram.StoreLE(off, size, v) {
		buf := make([]byte, size)
		for i := 0; i < size; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		b.s.dram.WriteBytes(off, buf)
	}
	// The store may have overwritten code another hart predecoded.
	b.s.invalidateDecode(addr, size)
	return done - b.now
}

// decodeMMIO resolves an address to a device window.
func (s *SoC) decodeMMIO(addr uint64) (Device, uint64, bool) {
	switch {
	case addr >= NICBase && addr < NICBase+mmioWindow:
		return nicDevice{s.nic}, addr - NICBase, true
	case addr >= BlockDevBase && addr < BlockDevBase+mmioWindow:
		return bdevDevice{s.bdev}, addr - BlockDevBase, true
	}
	// Binary search the sorted slots for the window containing addr.
	if i := sort.Search(len(s.devices), func(i int) bool { return s.devices[i].base > addr }); i > 0 {
		if sl := &s.devices[i-1]; addr-sl.base < mmioWindow {
			return sl.dev, addr - sl.base, true
		}
	}
	return nil, 0, false
}

// nicDevice adapts the NIC's MMIO interface to the Device shape.
type nicDevice struct{ n *nic.NIC }

func (d nicDevice) MMIOLoad(now clock.Cycles, off uint64) uint64     { return d.n.MMIOLoad(off) }
func (d nicDevice) MMIOStore(now clock.Cycles, off uint64, v uint64) { d.n.MMIOStore(off, v) }
func (d nicDevice) IntrPending() bool                                { return d.n.IntrPending() }

// bdevDevice adapts the block device likewise.
type bdevDevice struct{ b *blockdev.Device }

func (d bdevDevice) MMIOLoad(now clock.Cycles, off uint64) uint64     { return d.b.MMIOLoad(now, off) }
func (d bdevDevice) MMIOStore(now clock.Cycles, off uint64, v uint64) { d.b.MMIOStore(off, v) }
func (d bdevDevice) IntrPending() bool                                { return d.b.IntrPending() }
