package faults

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/token"
)

func testTargets() []Target {
	return []Target{
		{Name: "server0", Ports: 1, Kind: NodeTarget},
		{Name: "server1", Ports: 1, Kind: NodeTarget},
		{Name: "tor0", Ports: 4, Kind: SwitchTarget},
	}
}

func chaosConfig(seed uint64) Config {
	cfg, err := Scenario("chaos", seed, 64_000_000)
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestScheduleDeterminism is the core contract: same seed, byte-identical
// schedule; different seed, different schedule; target order irrelevant.
func TestScheduleDeterminism(t *testing.T) {
	p1, err := Generate(chaosConfig(42), testTargets())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(chaosConfig(42), testTargets())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Encode(), p2.Encode()) {
		t.Fatal("same seed produced different schedules")
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("same seed produced different fingerprints")
	}

	// Reversed target order must not change the schedule.
	rev := testTargets()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	p3, err := Generate(chaosConfig(42), rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Encode(), p3.Encode()) {
		t.Fatal("target order changed the schedule")
	}

	p4, err := Generate(chaosConfig(43), testTargets())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p1.Encode(), p4.Encode()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(p1.Events()) == 0 {
		t.Fatal("chaos scenario scheduled no events")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}, []Target{{Name: "", Ports: 1}}); err == nil {
		t.Error("empty target name accepted")
	}
	if _, err := Generate(Config{}, []Target{{Name: "a", Ports: 0}}); err == nil {
		t.Error("zero-port target accepted")
	}
	if _, err := Generate(Config{}, []Target{{Name: "a", Ports: 1}, {Name: "a", Ports: 1}}); err == nil {
		t.Error("duplicate target accepted")
	}
}

// planWith builds a plan with a single hand-written event for semantic
// tests.
func planWith(ev Event) *Plan {
	p := &Plan{
		cfg:        Config{},
		byEndpoint: map[string][]Event{},
		stalls:     map[string][]Event{},
		counters:   stats.NewCounters(),
	}
	p.events = []Event{ev}
	if ev.Kind == PortStall {
		p.stalls[ev.Target] = []Event{ev}
	} else {
		p.byEndpoint[ev.Target] = []Event{ev}
	}
	return p
}

func fullBatch(n int) *token.Batch {
	b := token.NewBatch(n)
	for i := 0; i < n; i++ {
		b.Put(i, token.Token{Data: uint64(0x100 + i), Valid: true})
	}
	return b
}

func TestLinkFlapDropsWindow(t *testing.T) {
	p := planWith(Event{Kind: LinkFlap, Target: "n0", Port: 0, Start: 104, End: 108})
	b := fullBatch(16)
	p.FilterInput("n0", 0, 100, b) // batch covers [100, 116)
	for i := 0; i < 16; i++ {
		c := 100 + i
		got := b.At(i).Valid
		want := c < 104 || c >= 108
		if got != want {
			t.Errorf("cycle %d: token present=%v, want %v", c, got, want)
		}
	}
	// Wrong port: untouched.
	b2 := fullBatch(16)
	p.FilterInput("n0", 1, 100, b2)
	if b2.Occupied() != 16 {
		t.Error("flap applied to wrong port")
	}
	// Other endpoint: untouched.
	b3 := fullBatch(16)
	p.FilterInput("n1", 0, 100, b3)
	if b3.Occupied() != 16 {
		t.Error("flap applied to wrong endpoint")
	}
	if got := p.Counters().Get("faults.injected.flap-dropped-tokens"); got != 4 {
		t.Errorf("dropped counter = %d, want 4", got)
	}
}

func TestCorruptMask(t *testing.T) {
	p := planWith(Event{Kind: Corrupt, Target: "n0", Port: 0, Start: 0, End: 2, Mask: 0xff})
	b := fullBatch(4)
	p.FilterInput("n0", 0, 0, b)
	if got := b.At(0).Data; got != (0x100 ^ 0xff) {
		t.Errorf("cycle 0 data = %#x, want corrupted", got)
	}
	if got := b.At(2).Data; got != 0x102 {
		t.Errorf("cycle 2 data = %#x, want untouched", got)
	}
}

func TestNodeFreezeSilencesBothDirections(t *testing.T) {
	p := planWith(Event{Kind: NodeFreeze, Target: "n0", Port: -1, Start: 0, End: 100})
	in := fullBatch(8)
	p.FilterInput("n0", 0, 0, in)
	if !in.IsEmpty() {
		t.Error("frozen node still receives tokens")
	}
	out := fullBatch(8)
	p.FilterOutput("n0", 0, 0, out)
	if !out.IsEmpty() {
		t.Error("frozen node still emits tokens")
	}
	// After the freeze window, traffic flows again.
	after := fullBatch(8)
	p.FilterInput("n0", 0, 200, after)
	if after.Occupied() != 8 {
		t.Error("freeze applied outside its window")
	}
}

func TestStallFunc(t *testing.T) {
	p := planWith(Event{Kind: PortStall, Target: "tor0", Port: 2, Start: 50, End: 60})
	fn := p.StallFunc("tor0")
	if fn == nil {
		t.Fatal("no stall func for switch with scheduled stall")
	}
	if fn(2, 49) || !fn(2, 50) || !fn(2, 59) || fn(2, 60) {
		t.Error("stall window boundaries wrong")
	}
	if fn(1, 55) {
		t.Error("stall applied to wrong port")
	}
	if p.StallFunc("other") != nil {
		t.Error("stall func returned for switch without stalls")
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := Scenarios()
	if len(names) == 0 {
		t.Fatal("no scenarios registered")
	}
	for _, n := range names {
		cfg, err := Scenario(n, 1, 0)
		if err != nil {
			t.Fatalf("scenario %q: %v", n, err)
		}
		if !cfg.Enabled() {
			t.Errorf("scenario %q injects nothing", n)
		}
	}
	if cfg, err := Scenario("", 1, 0); err != nil || cfg.Enabled() {
		t.Error("empty scenario should be a disabled config")
	}
	if _, err := Scenario("no-such", 1, 0); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestEventsWithinHorizon checks no event starts at or past the horizon.
func TestEventsWithinHorizon(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Horizon = 10_000_000
	p, err := Generate(cfg, testTargets())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range p.Events() {
		if ev.Start >= cfg.Horizon {
			t.Fatalf("event %v starts past horizon %d", ev, cfg.Horizon)
		}
		if ev.End <= ev.Start {
			t.Fatalf("event %v has empty window", ev)
		}
		if ev.Start < 0 {
			t.Fatalf("event %v starts before time zero", ev)
		}
	}
	var _ clock.Cycles = p.Config().Horizon
}
