package manager

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/faults"
	"repro/internal/token"
)

// recorder wraps the cluster's fault plan and folds every batch crossing
// an endpoint boundary into a per-(direction, endpoint, port) hash. Each
// key is only ever touched from its endpoint's goroutine, so the fold
// order per key is deterministic under RunParallel too; the mutex only
// guards the shared map.
type recorder struct {
	inner fame.Injector
	mu    sync.Mutex
	sums  map[string]uint64
}

func newRecorder(inner fame.Injector) *recorder {
	return &recorder{inner: inner, sums: make(map[string]uint64)}
}

func (rc *recorder) fold(dir, ep string, port int, start clock.Cycles, b *token.Batch) {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	key := fmt.Sprintf("%s:%s/%d", dir, ep, port)
	rc.mu.Lock()
	put(rc.sums[key])
	rc.mu.Unlock()
	put(uint64(start))
	put(uint64(b.N))
	for _, s := range b.Slots {
		put(uint64(s.Offset))
		put(s.Tok.Data)
		var flags uint64
		if s.Tok.Valid {
			flags |= 1
		}
		if s.Tok.Last {
			flags |= 2
		}
		put(flags)
	}
	sum := h.Sum64()
	rc.mu.Lock()
	rc.sums[key] = sum
	rc.mu.Unlock()
}

func (rc *recorder) FilterInput(ep string, port int, start clock.Cycles, b *token.Batch) {
	if rc.inner != nil {
		rc.inner.FilterInput(ep, port, start, b)
	}
	rc.fold("in", ep, port, start, b)
}

func (rc *recorder) FilterOutput(ep string, port int, start clock.Cycles, b *token.Batch) {
	if rc.inner != nil {
		rc.inner.FilterOutput(ep, port, start, b)
	}
	rc.fold("out", ep, port, start, b)
}

// snapTopo builds a fresh 4-node, 2-rack tree per call (Deploy mutates
// the spec tree, so checkpointed and restored deployments each get their
// own copy).
func snapTopo() *SwitchNode {
	root := NewSwitchNode("root")
	tor0 := NewSwitchNode("tor0")
	tor1 := NewSwitchNode("tor1")
	tor0.AddDownlinks(NewServerNode("n00", SingleCore), NewServerNode("n01", SingleCore))
	tor1.AddDownlinks(NewServerNode("n10", SingleCore), NewServerNode("n11", SingleCore))
	root.AddDownlinks(tor0, tor1)
	return root
}

// snapCfg enables fault injection with kinds that perturb the token
// streams without scheduling kernel work on the nodes: Corrupt is
// deliberately excluded, because a corrupted frame that happens to decode
// as ARP would schedule node events and make the nodes non-quiescent at
// the checkpoint boundary.
func snapCfg() DeployConfig {
	return DeployConfig{
		LinkLatency: 64,
		Seed:        42,
		FaultConfig: &faults.Config{
			Seed:       7,
			Horizon:    1 << 20,
			PacketDrop: faults.Burst{MeanEvery: 2000, MeanDuration: 200},
			LinkFlap:   faults.Burst{MeanEvery: 3000, MeanDuration: 150},
		},
	}
}

// startStreams drives cross-rack raw-stream traffic: pure data-plane
// load that keeps every node quiescent (checkpointable) while exercising
// both ToRs, the root and the fault injector.
func startStreams(c *Cluster) {
	pairs := [][2]string{{"n00", "n10"}, {"n01", "n11"}, {"n11", "n00"}}
	for _, p := range pairs {
		src, dst := c.NodeByName(p[0]), c.NodeByName(p[1])
		src.StartRawStream(100, dst.MAC(), 256, 1.0, 1<<20)
	}
}

// TestClusterCheckpointDeterminism is the keystone: run N cycles,
// checkpoint, run M more while recording every token batch; then restore
// the checkpoint into a fresh deployment and re-run the same M cycles.
// Token streams, node/switch statistics and the final whole-cluster state
// bytes must be identical — under the sequential runner and the
// goroutine-per-endpoint parallel runner, with fault injection active the
// whole time.
func TestClusterCheckpointDeterminism(t *testing.T) {
	const N, M = 4096, 8192
	for _, parallel := range []bool{false, true} {
		name := "Run"
		if parallel {
			name = "RunParallel"
		}
		t.Run(name, func(t *testing.T) {
			advance := func(c *Cluster, cycles clock.Cycles) {
				t.Helper()
				var err error
				if parallel {
					err = c.Runner.RunParallel(cycles)
				} else {
					err = c.Runner.Run(cycles)
				}
				if err != nil {
					t.Fatal(err)
				}
			}

			c1, err := Deploy(snapTopo(), snapCfg())
			if err != nil {
				t.Fatal(err)
			}
			if c1.Faults == nil {
				t.Fatal("fault injection not wired")
			}
			startStreams(c1)
			advance(c1, N)

			var ck bytes.Buffer
			if err := c1.Checkpoint(&ck); err != nil {
				t.Fatalf("checkpoint at cycle %d: %v", N, err)
			}

			rec1 := newRecorder(c1.Faults)
			c1.Runner.SetInjector(rec1)
			advance(c1, M)
			var final1 bytes.Buffer
			if err := c1.Checkpoint(&final1); err != nil {
				t.Fatal(err)
			}

			c2, err := RestoreCluster(bytes.NewReader(ck.Bytes()), snapTopo(), snapCfg())
			if err != nil {
				t.Fatalf("RestoreCluster: %v", err)
			}
			if got := c2.Runner.Cycle(); got != N {
				t.Fatalf("restored cluster at cycle %d, want %d", got, N)
			}
			rec2 := newRecorder(c2.Faults)
			c2.Runner.SetInjector(rec2)
			advance(c2, M)
			var final2 bytes.Buffer
			if err := c2.Checkpoint(&final2); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(final1.Bytes(), final2.Bytes()) {
				t.Errorf("final checkpoints differ (%d vs %d bytes)", final1.Len(), final2.Len())
			}
			if len(rec1.sums) == 0 {
				t.Fatal("recorder saw no batches")
			}
			if len(rec1.sums) != len(rec2.sums) {
				t.Errorf("recorders saw %d vs %d stream keys", len(rec1.sums), len(rec2.sums))
			}
			for key, sum := range rec1.sums {
				if rec2.sums[key] != sum {
					t.Errorf("token stream %q diverged after restore", key)
				}
			}
			for _, n1 := range c1.Servers {
				n2 := c2.NodeByName(n1.Name())
				if n1.Stats() != n2.Stats() {
					t.Errorf("node %s stats diverged: %+v vs %+v", n1.Name(), n1.Stats(), n2.Stats())
				}
			}
		})
	}
}

// TestCheckpointRefusesNonQuiescentNode: a node with in-flight kernel
// work (a ping awaiting its reply) cannot be serialised, and the error
// names it.
func TestCheckpointRefusesNonQuiescentNode(t *testing.T) {
	c, err := Deploy(snapTopo(), DeployConfig{LinkLatency: 64})
	if err != nil {
		t.Fatal(err)
	}
	c.NodeByName("n01").Ping(10, c.NodeByName("n10").IP(), 1, 1000, nil)
	if err := c.RunFor(64); err != nil {
		t.Fatal(err)
	}
	err = c.Checkpoint(&bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "n01") {
		t.Fatalf("checkpoint with ping in flight: err = %v", err)
	}
}

// TestRestoreRefusesTopologyMismatch: a checkpoint from one target must
// not load into a structurally different deployment.
func TestRestoreRefusesTopologyMismatch(t *testing.T) {
	c, err := Deploy(snapTopo(), snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	if err := c.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	small := NewSwitchNode("root")
	small.AddDownlinks(NewServerNode("a", SingleCore), NewServerNode("b", SingleCore))
	if _, err := RestoreCluster(bytes.NewReader(ck.Bytes()), small, snapCfg()); err == nil ||
		!strings.Contains(err.Error(), "topology hash") {
		t.Fatalf("restore into different topology: err = %v", err)
	}
}

// TestDeployDeterministic: two deployments of the same spec produce
// byte-identical initial checkpoints — this is what the ordered static-ARP
// seeding (and every other sorted-order walk in Deploy) buys.
func TestDeployDeterministic(t *testing.T) {
	var streams [2][]byte
	for i := range streams {
		c, err := Deploy(snapTopo(), snapCfg())
		if err != nil {
			t.Fatal(err)
		}
		var ck bytes.Buffer
		if err := c.Checkpoint(&ck); err != nil {
			t.Fatal(err)
		}
		streams[i] = ck.Bytes()
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Fatal("two identical deployments checkpoint to different bytes")
	}
}
