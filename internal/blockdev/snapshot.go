package blockdev

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// Save serialises the controller (trackers, staging registers, completion
// queue, interrupt enable, counters) and the sparse sector store in
// sorted sector order so equal disks always produce equal bytes.
func (d *Device) Save(w *snapshot.Writer) error {
	w.Begin("blockdev.Device", 1)
	w.Uvarint(uint64(len(d.trackers)))
	for _, tr := range d.trackers {
		w.Bool(tr.busy)
		w.U64(uint64(tr.doneAt))
	}
	w.U64(d.addr)
	w.U64(d.sector)
	w.U64(d.nsectors)
	w.U64(d.write)
	w.Uvarint(uint64(len(d.completions)))
	for _, id := range d.completions {
		w.Uvarint(uint64(id))
	}
	w.Bool(d.intrEn)
	w.U64(d.stats.Reads)
	w.U64(d.stats.Writes)
	w.U64(d.stats.SectorsMoved)
	w.U64(d.stats.AllocFailed)

	sectors := make([]uint64, 0, len(d.disk))
	for s := range d.disk {
		sectors = append(sectors, s)
	}
	sort.Slice(sectors, func(i, j int) bool { return sectors[i] < sectors[j] })
	w.Uvarint(uint64(len(sectors)))
	for _, s := range sectors {
		w.Uvarint(s)
		w.Bytes(d.disk[s])
	}
	return w.Err()
}

// Restore overwrites the controller and disk contents from r.
func (d *Device) Restore(r *snapshot.Reader) error {
	if err := r.Begin("blockdev.Device", 1); err != nil {
		return err
	}
	ntrackers := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if ntrackers != uint64(len(d.trackers)) {
		return fmt.Errorf("blockdev: checkpoint has %d trackers, device has %d", ntrackers, len(d.trackers))
	}
	trackers := make([]tracker, ntrackers)
	for i := range trackers {
		trackers[i] = tracker{busy: r.Bool(), doneAt: clock.Cycles(r.U64()), id: i}
	}
	addr := r.U64()
	sector := r.U64()
	nsectors := r.U64()
	write := r.U64()
	// The completion queue has no hard structural bound (a tracker can
	// complete again before software pops the previous entry); cap it
	// generously rather than exactly.
	completions := make([]int, r.Count(1<<16))
	for i := range completions {
		id := r.Uvarint()
		if r.Err() == nil && id >= ntrackers {
			return fmt.Errorf("blockdev: completion for tracker %d, device has %d", id, ntrackers)
		}
		completions[i] = int(id)
	}
	intrEn := r.Bool()
	var stats Stats
	stats.Reads = r.U64()
	stats.Writes = r.U64()
	stats.SectorsMoved = r.U64()
	stats.AllocFailed = r.U64()

	nsec := r.Count(int(d.NumSectors()))
	if err := r.Err(); err != nil {
		return err
	}
	disk := make(map[uint64][]byte, nsec)
	var prev uint64
	for i := 0; i < nsec; i++ {
		s := r.Uvarint()
		data := r.Bytes(SectorBytes)
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && s <= prev {
			return fmt.Errorf("blockdev: checkpoint sectors out of order (%d after %d)", s, prev)
		}
		if s >= d.NumSectors() {
			return fmt.Errorf("blockdev: checkpoint sector %d beyond capacity", s)
		}
		if len(data) != SectorBytes {
			return fmt.Errorf("blockdev: checkpoint sector %d is %d bytes, want %d", s, len(data), SectorBytes)
		}
		prev = s
		disk[s] = data
	}
	if err := r.Err(); err != nil {
		return err
	}
	d.trackers = trackers
	d.addr = addr
	d.sector = sector
	d.nsectors = nsectors
	d.write = write
	d.completions = completions
	d.intrEn = intrEn
	d.stats = stats
	d.disk = disk
	return nil
}
