package fame

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/token"
)

func TestSPSCRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ min, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {17, 32},
	} {
		if got := newSPSCRing(tc.min).cap(); got != tc.want {
			t.Errorf("newSPSCRing(%d).cap() = %d, want %d", tc.min, got, tc.want)
		}
	}
}

func TestSPSCRingFullEmptyAndWraparound(t *testing.T) {
	q := newSPSCRing(4)
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}

	// Drive well past capacity so the cursors wrap the buffer many times,
	// keeping the ring one short of full to exercise the cached-cursor
	// reload on both sides.
	batches := make([]*token.Batch, 64)
	for i := range batches {
		batches[i] = token.NewBatch(1)
	}
	next := 0
	for i := 0; i < 3; i++ {
		if !q.push(batches[next]) {
			t.Fatalf("push %d failed on non-full ring", next)
		}
		next++
	}
	read := 0
	for next < len(batches) {
		if !q.push(batches[next]) {
			t.Fatalf("push %d failed with %d in flight", next, q.len())
		}
		next++
		got, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d failed with %d in flight", read, q.len())
		}
		if got != batches[read] {
			t.Fatalf("pop %d returned wrong batch (FIFO order broken)", read)
		}
		read++
	}
	for read < len(batches) {
		got, ok := q.pop()
		if !ok {
			t.Fatalf("drain pop %d failed", read)
		}
		if got != batches[read] {
			t.Fatalf("drain pop %d returned wrong batch", read)
		}
		read++
	}
	if _, ok := q.pop(); ok {
		t.Fatal("ring not empty after draining everything")
	}

	// Full ring must reject the overflow push and accept it after one pop.
	for i := 0; i < q.cap(); i++ {
		if !q.push(batches[i]) {
			t.Fatalf("refill push %d failed", i)
		}
	}
	if q.push(batches[q.cap()]) {
		t.Fatal("push on full ring succeeded")
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop on full ring failed")
	}
	if !q.push(batches[q.cap()]) {
		t.Fatal("push after pop failed")
	}
}

// TestSPSCRingConcurrent streams batches through a small ring from a
// producer goroutine to a consumer goroutine; under -race this also
// checks the publication ordering of the slot writes against the cursor
// stores.
func TestSPSCRingConcurrent(t *testing.T) {
	const total = 10000
	q := newSPSCRing(8)
	batches := make([]*token.Batch, total)
	for i := range batches {
		b := token.NewBatch(1)
		b.Put(0, token.Token{Data: uint64(i), Valid: true})
		batches[i] = b
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			got, ok := q.pop()
			for !ok {
				runtime.Gosched()
				got, ok = q.pop()
			}
			if got != batches[i] || got.Slots[0].Tok.Data != uint64(i) {
				done <- fmt.Errorf("FIFO order broken at element %d", i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		for !q.push(batches[i]) {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if q.len() != 0 {
		t.Fatalf("ring holds %d batches after balanced push/pop", q.len())
	}
}
