package stats

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %g", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %g", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Percentile(50)) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample should yield NaN")
	}
	if s.N() != 0 {
		t.Errorf("N = %d", s.N())
	}
}

func TestSingleValue(t *testing.T) {
	var s Sample
	s.Add(42)
	for _, p := range []float64{0, 1, 50, 95, 100} {
		if got := s.Percentile(p); got != 42 {
			t.Errorf("P%g = %g, want 42", p, got)
		}
	}
}

func TestAddAfterPercentileResorts(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Errorf("Min after re-add = %g", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	check := func(vals []float64, pa, pb uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		var s Sample
		for _, v := range vals {
			s.Add(v)
		}
		a, b := float64(pa%101), float64(pb%101)
		if a > b {
			a, b = b, a
		}
		va, vb := s.Percentile(a), s.Percentile(b)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile of a sorted distinct sequence brackets correctly.
func TestPercentileAgainstSortProperty(t *testing.T) {
	check := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			s.Add(float64(v))
		}
		sort.Float64s(vals)
		// P50 must lie between the two middle order statistics.
		med := s.Median()
		lo := vals[(len(vals)-1)/2]
		hi := vals[len(vals)/2]
		return med >= lo && med <= hi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Accumulate(5, 1)
	ts.Accumulate(99, 2)
	ts.Accumulate(100, 10)
	ts.Accumulate(350, 5)
	times, totals := ts.Points()
	wantTimes := []int64{0, 100, 300}
	wantTotals := []float64{3, 10, 5}
	if len(times) != 3 {
		t.Fatalf("points = %v %v", times, totals)
	}
	for i := range wantTimes {
		if times[i] != wantTimes[i] || totals[i] != wantTotals[i] {
			t.Errorf("point %d = (%d, %g), want (%d, %g)", i, times[i], totals[i], wantTimes[i], wantTotals[i])
		}
	}
}

func TestTimeSeriesBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTimeSeries(0)
}

func TestTable(t *testing.T) {
	tb := NewTable("Config", "50th (us)", "QPS")
	tb.AddRow("Cross-ToR", 79.26, 4691888)
	tb.AddRow("Cross-dc", 93.82, 4077369)
	out := tb.String()
	if !strings.Contains(out, "Cross-ToR") || !strings.Contains(out, "79.26") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	// All rows should align: same prefix width up to the second column.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("separator row malformed: %q", lines[1])
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("drops", 3)
	c.Add("flaps", 1)
	c.Add("drops", 2)
	if got := c.Get("drops"); got != 5 {
		t.Errorf("drops = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "drops" || names[1] != "flaps" {
		t.Errorf("Names() = %v, want sorted [drops flaps]", names)
	}
	// Concurrent increments must not race or lose counts.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("par", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("par"); got != 800 {
		t.Errorf("par = %d, want 800", got)
	}
	if !strings.Contains(c.String(), "drops") {
		t.Error("rendered table missing counter name")
	}
}
