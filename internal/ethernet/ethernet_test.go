package ethernet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC(0x0242ac110002)
	if got := m.String(); got != "02:42:ac:11:00:02" {
		t.Errorf("String() = %q", got)
	}
	if got := Broadcast.String(); got != "ff:ff:ff:ff:ff:ff" {
		t.Errorf("Broadcast.String() = %q", got)
	}
}

func TestMACBytesRoundTrip(t *testing.T) {
	check := func(raw uint64) bool {
		m := MAC(raw & 0xffff_ffff_ffff)
		b := m.Bytes()
		return MACFromBytes(b[:]) == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIPString(t *testing.T) {
	ip := IP(0x0a000001)
	if got := ip.String(); got != "10.0.0.1" {
		t.Errorf("String() = %q", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:     MAC(0x111111111111),
		Src:     MAC(0x222222222222),
		Type:    TypeIPv4,
		Payload: []byte("hello, datacenter"),
	}
	buf, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("round trip mismatch:\nhave %+v\nwant %+v", got, f)
	}
}

func TestFrameTooLong(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxFrameLen)}
	if _, err := f.Encode(); err == nil {
		t.Error("oversized frame encoded without error")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Error("short frame decoded without error")
	}
	// length field larger than buffer
	f := &Frame{Dst: 1, Src: 2, Type: TypeARP, Payload: []byte("xy")}
	buf, _ := f.Encode()
	buf[0], buf[1] = 0xff, 0xff
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("frame with oversized length field decoded without error")
	}
}

func TestFlitRoundTripWithPadding(t *testing.T) {
	// Property: any frame survives flit conversion regardless of how its
	// length aligns to the 8-byte flit size.
	check := func(payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		f := &Frame{Dst: MAC(0xaabbccddeeff), Src: MAC(0x010203040506), Type: TypeIPv4, Payload: payload}
		flits, err := f.FrameFlits()
		if err != nil {
			return false
		}
		got, err := DecodeFlits(flits)
		if err != nil {
			return false
		}
		return got.Dst == f.Dst && got.Src == f.Src && got.Type == f.Type &&
			bytes.Equal(got.Payload, f.Payload)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDstFromFirstFlit(t *testing.T) {
	f := &Frame{Dst: MAC(0xdeadbeefcafe), Src: 1, Type: TypeIPv4, Payload: []byte("p")}
	flits, err := f.FrameFlits()
	if err != nil {
		t.Fatal(err)
	}
	if got := DstFromFirstFlit(flits[0]); got != f.Dst {
		t.Errorf("DstFromFirstFlit = %v, want %v", got, f.Dst)
	}
}

func TestFlitCount(t *testing.T) {
	// A 200 Gbit/s link moves one 64-bit flit per 3.2 GHz cycle; a frame of
	// 16+48=64 bytes must take exactly 8 cycles on the wire.
	f := &Frame{Payload: make([]byte, 48)}
	flits, err := f.FrameFlits()
	if err != nil {
		t.Fatal(err)
	}
	if len(flits) != 8 {
		t.Errorf("64-byte frame occupies %d flits, want 8", len(flits))
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := &IPv4{Src: IP(0x0a000001), Dst: IP(0x0a000002), Proto: ProtoUDP, TTL: 64, Payload: []byte("data")}
	got, err := DecodeIPv4(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestIPv4Errors(t *testing.T) {
	if _, err := DecodeIPv4([]byte{1}); err == nil {
		t.Error("short ipv4 decoded without error")
	}
	p := (&IPv4{Payload: []byte("abc")}).Encode()
	p[10], p[11] = 0xff, 0xff
	if _, err := DecodeIPv4(p); err == nil {
		t.Error("ipv4 with bad payload length decoded without error")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	m := &ICMP{Type: ICMPEchoRequest, ID: 7, Seq: 42, SentCycle: 123456789}
	got, err := DecodeICMP(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := DecodeICMP([]byte{1, 2}); err == nil {
		t.Error("short icmp decoded without error")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 11211, DstPort: 4096, Payload: []byte("get key1")}
	got, err := DecodeUDP(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, u)
	}
	if _, err := DecodeUDP([]byte{1}); err == nil {
		t.Error("short udp decoded without error")
	}
	buf := u.Encode()
	buf[4], buf[5], buf[6], buf[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeUDP(buf); err == nil {
		t.Error("udp with bad payload length decoded without error")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPRequest, SenderMAC: 0x1, SenderIP: 0x0a000001, TargetMAC: 0, TargetIP: 0x0a000002}
	got, err := DecodeARP(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, a)
	}
	if _, err := DecodeARP([]byte{0}); err == nil {
		t.Error("short arp decoded without error")
	}
}

func TestNestedEncapsulation(t *testing.T) {
	// Full stack: ICMP inside IPv4 inside a frame inside flits, and back.
	icmp := &ICMP{Type: ICMPEchoRequest, ID: 1, Seq: 2, SentCycle: 99}
	ip := &IPv4{Src: 0x0a000001, Dst: 0x0a000002, Proto: ProtoICMP, TTL: 64, Payload: icmp.Encode()}
	fr := &Frame{Dst: 0xa, Src: 0xb, Type: TypeIPv4, Payload: ip.Encode()}
	flits, err := fr.FrameFlits()
	if err != nil {
		t.Fatal(err)
	}

	fr2, err := DecodeFlits(flits)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := DecodeIPv4(fr2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	icmp2, err := DecodeICMP(ip2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(icmp, icmp2) {
		t.Errorf("nested round trip mismatch: %+v vs %+v", icmp2, icmp)
	}
}
