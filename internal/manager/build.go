package manager

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// This file models the FPGA build flow: in the real FireSim, each distinct
// server configuration is run through Vivado synthesis/place-and-route on
// a fleet of build instances ("users can now scale to an essentially
// unlimited number of FPGA synthesis/P&R machines"), producing an Amazon
// FPGA Image (AGFI) per configuration. Here a build is a deterministic
// fingerprint of the blade configuration — enough to exercise the
// manager's artifact bookkeeping: builds are deduplicated per type, cached
// across deploys, and heterogeneous topologies trigger parallel builds.

// Image is a built FPGA image for one blade configuration.
type Image struct {
	// Blade is the configuration this image implements.
	Blade BladeType
	// AGFI is the deterministic image identifier.
	AGFI string
	// Supernode records whether the image packs four blades per FPGA.
	Supernode bool
}

// BuildFarm caches built images, deduplicating repeat builds like the
// manager's artifact store.
type BuildFarm struct {
	images map[string]Image
	// Builds counts actual (non-cached) build jobs executed.
	Builds int
}

// NewBuildFarm returns an empty image cache.
func NewBuildFarm() *BuildFarm {
	return &BuildFarm{images: make(map[string]Image)}
}

// agfiFor fingerprints a configuration.
func agfiFor(blade BladeType, supernode bool) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|supernode=%v|l1=16K|l2=256K|dram=16G|nic=200G", blade, supernode)
	return fmt.Sprintf("agfi-%016x", h.Sum64())
}

// Build returns the image for a blade configuration, building it if it is
// not cached.
func (f *BuildFarm) Build(blade BladeType, supernode bool) (Image, error) {
	if _, err := blade.Cores(); err != nil {
		return Image{}, err
	}
	key := string(blade) + fmt.Sprintf("|%v", supernode)
	if img, ok := f.images[key]; ok {
		return img, nil
	}
	img := Image{Blade: blade, AGFI: agfiFor(blade, supernode), Supernode: supernode}
	f.images[key] = img
	f.Builds++
	return img, nil
}

// BuildAll builds every distinct blade type in the topology (the builds
// are independent, which is what the paper parallelises across build
// instances) and returns the images sorted by blade type.
func (f *BuildFarm) BuildAll(root *SwitchNode, supernode bool) ([]Image, error) {
	types := make(map[BladeType]bool)
	var walk func(t TopoNode)
	walk = func(t TopoNode) {
		switch v := t.(type) {
		case *SwitchNode:
			for _, c := range v.Downlinks {
				walk(c)
			}
		case *ServerNode:
			types[v.Type] = true
		}
	}
	walk(root)
	var out []Image
	for bt := range types {
		img, err := f.Build(bt, supernode)
		if err != nil {
			return nil, err
		}
		out = append(out, img)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Blade < out[j].Blade })
	return out, nil
}
