package manager

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// benchmarkDeployedRun measures the per-round cost of a deployed 8-node
// rack under light ping traffic, with and without the observability
// layer attached. Comparing the two benchmarks isolates the true cost of
// metrics on the hot path:
//
//	go test -run - -bench DeployedRun ./internal/manager/
func benchmarkDeployedRun(b *testing.B, withMetrics bool) {
	benchmarkDeployedRunParts(b, withMetrics, withMetrics)
}

func benchmarkDeployedRunParts(b *testing.B, runnerMetrics, switchMetrics bool) {
	topo := NewSwitchNode("tor0")
	for i := 0; i < 8; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	c, err := Deploy(topo, DeployConfig{})
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry("bench")
	if runnerMetrics {
		c.Runner.EnableMetrics(reg)
	}
	if switchMetrics {
		for _, sw := range c.Switches {
			sw.EnableMetrics(reg)
		}
	}
	step := c.Runner.Step()
	// Warm the runner before the clock starts.
	if err := c.Runner.Run(4 * step); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Each op is one full tick-sampling period (32 rounds). Sampling
	// restarts with every Run call — round index 0 is always sampled —
	// so single-round ops would time every round and overstate the
	// instrumented cost ~32x over a production-length run.
	for i := 0; i < b.N; i++ {
		// Fresh traffic every slice, scheduled identically in both
		// variants, so the rack never goes fully idle.
		src := c.Servers[i%len(c.Servers)]
		dst := c.Servers[(i+1)%len(c.Servers)]
		src.Ping(c.Runner.Cycle(), dst.IP(), 4, 8*step, nil)
		if err := c.Runner.Run(32 * step); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeployedRunBase(b *testing.B)    { benchmarkDeployedRun(b, false) }
func BenchmarkDeployedRunMetrics(b *testing.B) { benchmarkDeployedRun(b, true) }

// BenchmarkDeployedRunRunnerOnly instruments only the runner (not the
// switch), to attribute overhead between the two hot-path publishers.
func BenchmarkDeployedRunRunnerOnly(b *testing.B) {
	benchmarkDeployedRunParts(b, true, false)
}

// BenchmarkDeployedRunSwitchOnly instruments only the switch.
func BenchmarkDeployedRunSwitchOnly(b *testing.B) {
	benchmarkDeployedRunParts(b, false, true)
}
