package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/pfa"
	"repro/internal/softstack"
	"repro/internal/stats"
	"repro/internal/switchmodel"
)

func init() {
	register("fig11", func(sc Scale) (Result, error) { return Fig11(sc) })
}

// Fig11Point is one (workload, local-memory fraction) cell.
type Fig11Point struct {
	Workload      string
	LocalFraction float64
	// SWRuntimeUs / PFARuntimeUs are the measured application runtimes.
	SWRuntimeUs, PFARuntimeUs float64
	// Speedup is software/PFA runtime.
	Speedup float64
	// EvictionsEqual asserts the mode-independent replacement invariant.
	EvictionsEqual bool
	// MetaRatio is software/PFA metadata-management time.
	MetaRatio float64
}

// Fig11Result is the full sweep.
type Fig11Result struct {
	Points []Fig11Point
}

// Title implements Result.
func (Fig11Result) Title() string { return "Figure 11: Hardware-accelerated vs. software paging" }

// Render implements Result.
func (r Fig11Result) Render() string {
	t := stats.NewTable("Workload", "Local mem", "SW (us)", "PFA (us)", "Speedup", "Meta ratio", "Evictions equal")
	for _, p := range r.Points {
		t.AddRow(p.Workload, fmt.Sprintf("%.0f%%", p.LocalFraction*100),
			p.SWRuntimeUs, p.PFARuntimeUs, p.Speedup, p.MetaRatio, p.EvictionsEqual)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: PFA reduces paging overhead by up to 1.4x (Genome, low local\n" +
		"memory); evicted-page counts match across modes; metadata management time drops ~2.5x.\n")
	return b.String()
}

// Fig11 sweeps local-memory fractions for the Genome and Qsort workloads
// under software paging and the PFA, with the memory blade at the far end
// of a 2 us link.
func Fig11(sc Scale) (Fig11Result, error) {
	pages := uint64(4096) // 16 MiB at 4 KiB pages
	accesses := 60000
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	if sc.Quick {
		pages = 1024
		accesses = 8000
		fractions = []float64{0.5, 1.0}
	}

	workloads := []struct {
		name string
		mk   func() pfa.AccessPattern
	}{
		{"Genome", func() pfa.AccessPattern { return pfa.NewGenomePattern(pages, accesses, 42) }},
		{"Qsort", func() pfa.AccessPattern { return pfa.NewQsortPattern(pages, 2) }},
	}

	var out Fig11Result
	for _, wl := range workloads {
		for _, frac := range fractions {
			local := int(float64(pages) * frac)
			sw, err := fig11Run(pfa.SoftwarePaging, local, wl.mk())
			if err != nil {
				return Fig11Result{}, fmt.Errorf("fig11 %s sw: %w", wl.name, err)
			}
			hw, err := fig11Run(pfa.PFAMode, local, wl.mk())
			if err != nil {
				return Fig11Result{}, fmt.Errorf("fig11 %s pfa: %w", wl.name, err)
			}
			p := Fig11Point{
				Workload:       wl.name,
				LocalFraction:  frac,
				SWRuntimeUs:    float64(sw.Runtime) / 3200,
				PFARuntimeUs:   float64(hw.Runtime) / 3200,
				Speedup:        float64(sw.Runtime) / float64(hw.Runtime),
				EvictionsEqual: sw.Evictions == hw.Evictions,
			}
			if hw.MetadataTime > 0 {
				p.MetaRatio = float64(sw.MetadataTime) / float64(hw.MetadataTime)
			}
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

func fig11Run(mode pfa.Mode, localPages int, pattern pfa.AccessPattern) (pfa.Result, error) {
	appNode := softstack.NewNode(softstack.Config{Name: "app", MAC: 0x1, IP: 0x0a000001, Seed: 1})
	bladeNode := softstack.NewNode(softstack.Config{Name: "blade", MAC: 0x2, IP: 0x0a000002, Seed: 2})
	pfa.NewBlade(bladeNode)

	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x1, 0)
	sw.MACTable().Set(0x2, 1)
	r := fame.NewRunner()
	r.Add(appNode)
	r.Add(bladeNode)
	r.Add(sw)
	const linkLat = 6400 // 2 us
	if err := r.Connect(appNode, 0, sw, 0, linkLat); err != nil {
		return pfa.Result{}, err
	}
	if err := r.Connect(bladeNode, 0, sw, 1, linkLat); err != nil {
		return pfa.Result{}, err
	}

	app := pfa.NewApp(appNode, pfa.AppConfig{
		Mode:             mode,
		Blade:            0x2,
		LocalPages:       localPages,
		Pattern:          pattern,
		ComputePerAccess: clock.Cycles(6400), // 2 us of compute per page touch
	}, 0)
	for !app.Done() && r.Cycle() < 200_000_000_000 {
		if err := r.Run(linkLat * 64); err != nil {
			return pfa.Result{}, err
		}
	}
	if !app.Done() {
		return pfa.Result{}, fmt.Errorf("application did not complete")
	}
	return app.Result(), nil
}

var _ = ethernet.MAC(0)

// fig11RunWithCosts is fig11Run with an explicit paging-cost model, used
// by the newQ ablation.
func fig11RunWithCosts(mode pfa.Mode, localPages int, pattern pfa.AccessPattern, costs pfa.PagingCosts) (pfa.Result, error) {
	appNode := softstack.NewNode(softstack.Config{Name: "app", MAC: 0x1, IP: 0x0a000001, Seed: 1})
	bladeNode := softstack.NewNode(softstack.Config{Name: "blade", MAC: 0x2, IP: 0x0a000002, Seed: 2})
	pfa.NewBlade(bladeNode)

	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x1, 0)
	sw.MACTable().Set(0x2, 1)
	r := fame.NewRunner()
	r.Add(appNode)
	r.Add(bladeNode)
	r.Add(sw)
	const linkLat = 6400
	if err := r.Connect(appNode, 0, sw, 0, linkLat); err != nil {
		return pfa.Result{}, err
	}
	if err := r.Connect(bladeNode, 0, sw, 1, linkLat); err != nil {
		return pfa.Result{}, err
	}
	app := pfa.NewApp(appNode, pfa.AppConfig{
		Mode:             mode,
		Blade:            0x2,
		LocalPages:       localPages,
		Pattern:          pattern,
		ComputePerAccess: clock.Cycles(6400),
		Costs:            costs,
	}, 0)
	for !app.Done() && r.Cycle() < 200_000_000_000 {
		if err := r.Run(linkLat * 64); err != nil {
			return pfa.Result{}, err
		}
	}
	if !app.Done() {
		return pfa.Result{}, fmt.Errorf("application did not complete")
	}
	return app.Result(), nil
}
