#!/usr/bin/env bash
# Full local gate: static checks, build, and the test suite under the race
# detector. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One tiny topology, one rep: proves `firesim bench` still runs end to end
# and emits parseable JSON. Real numbers come from scripts/bench.sh.
go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -out "$(mktemp)" >/dev/null

echo "== parallel speedup gate (8 nodes) =="
# The worker-pool scheduler must never lose to the sequential one. On a
# multi-core host it should win outright (gate at 1.0); a single-core host
# cannot express real parallelism, so the gate there only rejects a
# regression back to the goroutine-per-endpoint era (0.73x at 8 nodes) while
# allowing measurement noise around parity.
BENCH_OUT="$(mktemp)"
go run ./cmd/firesim bench -nodes 8 -rounds 512 -reps 3 -out "$BENCH_OUT" >/dev/null
CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
MIN_SPEEDUP=1.0
if [ "$CORES" -lt 2 ]; then MIN_SPEEDUP=0.9; fi
SPEEDUP="$(sed -n 's/.*"parallel_speedup": \([0-9.]*\).*/\1/p' "$BENCH_OUT" | head -n1)"
echo "   parallel_speedup=$SPEEDUP (min $MIN_SPEEDUP on $CORES core(s))"
awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }' || {
    echo "FAIL: 8-node parallel_speedup $SPEEDUP < $MIN_SPEEDUP" >&2
    exit 1
}

echo "== checkpoint determinism smoke =="
# Run, checkpoint, run on, restore, re-run: final state must be
# bit-identical, under both runners. Exits non-zero on divergence.
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 >/dev/null
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 -parallel >/dev/null

echo "== snapshot fuzz (short) =="
# A few seconds of coverage-guided fuzzing over the snapshot decoder: the
# Reader must never panic on malformed streams.
go test ./internal/snapshot -run '^$' -fuzz FuzzReader -fuzztime 5s >/dev/null

echo "OK"
