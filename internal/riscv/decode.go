package riscv

import "repro/internal/clock"

// FetchFaster is an optional Bus extension for the predecoded-instruction
// fast path. FetchFast must be cycle-exact with Fetch at the same address
// and the same point in time: identical latency and identical side effects
// on the memory hierarchy (cache LRU/stats, everything a checkpoint
// captures) — only the functional word read is skipped, because the caller
// already holds the word in its decode cache. Returning ok=false means the
// bus could not prove the fast path safe and MUST have performed no side
// effects; the caller then falls back to a full Fetch.
type FetchFaster interface {
	FetchFast(addr uint64) (latency clock.Cycles, ok bool)
}

// FetchSpanner is an optional Bus extension over FetchFaster for batched
// fetch replay. FetchSpan replays k consecutive instruction fetches at
// addr, addr+4, ..., addr+4(k-1) — all within one instruction-cache line —
// with side effects identical to k sequential FetchFast calls and a
// per-fetch stall of zero (the hit path's invariant latency). Returning
// false means the span was not provably safe and no side effects were
// performed; the caller falls back to per-instruction fetches. ILineBytes
// reports the instruction-line size so callers can chunk spans by line.
type FetchSpanner interface {
	FetchSpan(addr uint64, k int) bool
	ILineBytes() uint64
}

// The decode cache is a direct-mapped array of pre-cracked instructions,
// sized to hold as many instructions as the default 16 KiB L1I holds
// (4096 four-byte words). It is purely derived state: never snapshotted,
// rebuilt lazily after any invalidation, so it cannot affect StateHash.
const (
	decBits = 12
	decSize = 1 << decBits
	decMask = decSize - 1
)

type decEntry struct {
	pc    uint64 // full-PC tag; hit requires pc match, so aliases are safe
	imm   uint64 // pre-cracked immediate (crackImm)
	word  uint32
	valid bool
	op    uint32
	rd    uint32
	rs1   uint32
	rs2   uint32
	f3    uint32
	f7    uint32
}

// SetDecodeCache enables or disables the predecoded instruction cache
// (default on). Disabling also drops the cached entries, so re-enabling
// starts cold.
func (c *CPU) SetDecodeCache(on bool) {
	c.decodeOn = on
	if !on {
		c.dec = nil
	}
}

// DecodeCacheEnabled reports whether the predecode fast path is active.
func (c *CPU) DecodeCacheEnabled() bool { return c.decodeOn }

// InvalidateDecode drops any predecoded entries covering [addr, addr+n).
// Because an entry for pc P lives only at index (P>>2)&decMask, clearing
// the index of every word in the range is exact and complete; entries for
// aliasing PCs that happen to share an index are dropped conservatively.
func (c *CPU) InvalidateDecode(addr uint64, n int) {
	if c.dec == nil {
		return
	}
	c.killBlocksRange(addr, n)
	if n > decSize*4 {
		c.InvalidateDecodeAll()
		return
	}
	end := addr + uint64(n)
	for w := addr &^ 3; w < end; w += 4 {
		c.dec[(w>>2)&decMask].valid = false
	}
}

// InvalidateDecodeAll drops every predecoded entry (fence.i, snapshot
// restore, bulk DMA) and every superblock chained over them.
func (c *CPU) InvalidateDecodeAll() {
	c.killBlocksAll()
	for i := range c.dec {
		c.dec[i].valid = false
	}
}

// fetchPredecode fetches the instruction at PC, consulting the decode
// cache first. It returns the instruction word, the fetch latency, the
// decode-cache entry for this PC (nil when the cache is off) and whether
// the entry's pre-cracked fields are valid for this word.
//
// Cycle-exactness: on a predecode hit with a FetchFaster bus, FetchFast
// replays the timing-model side effects of a fetch without the functional
// read. On any other bus the full Fetch still runs and the cached fields
// are reused only when the fetched word matches the cached one — which
// makes the fallback safe under self-modifying code by construction.
func (c *CPU) fetchPredecode() (word uint32, lat clock.Cycles, ent *decEntry, hit bool) {
	if !c.decodeOn {
		word, lat = c.bus.Fetch(c.PC)
		return word, lat, nil, false
	}
	if c.dec == nil {
		c.dec = make([]decEntry, decSize)
	}
	ent = &c.dec[(c.PC>>2)&decMask]
	if ent.valid && ent.pc == c.PC {
		if c.fastBus != nil {
			if l, ok := c.fastBus.FetchFast(c.PC); ok {
				return ent.word, l, ent, true
			}
		}
		word, lat = c.bus.Fetch(c.PC)
		return word, lat, ent, word == ent.word
	}
	word, lat = c.bus.Fetch(c.PC)
	return word, lat, ent, false
}
