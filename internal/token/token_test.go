package token

import (
	"testing"
	"testing/quick"
)

func TestEmptyTokenString(t *testing.T) {
	if got := Empty.String(); got != "·" {
		t.Errorf("Empty.String() = %q, want %q", got, "·")
	}
	v := Token{Data: 0xdead, Valid: true}
	if got := v.String(); got == "·" {
		t.Errorf("valid token rendered as empty: %q", got)
	}
	l := Token{Data: 1, Valid: true, Last: true}
	if got := l.String(); got == v.String() {
		t.Errorf("last flag not visible in String: %q", got)
	}
}

func TestBatchPutAt(t *testing.T) {
	b := NewBatch(16)
	if !b.IsEmpty() {
		t.Fatal("new batch should be empty")
	}
	b.Put(3, Token{Data: 30, Valid: true})
	b.Put(4, Empty) // empty tokens are not stored
	b.Put(9, Token{Data: 90, Valid: true, Last: true})

	if got := b.Occupied(); got != 2 {
		t.Fatalf("Occupied() = %d, want 2", got)
	}
	if got := b.At(3); got.Data != 30 || !got.Valid {
		t.Errorf("At(3) = %v", got)
	}
	if got := b.At(9); got.Data != 90 || !got.Last {
		t.Errorf("At(9) = %v", got)
	}
	for _, i := range []int{0, 1, 2, 4, 5, 8, 10, 15} {
		if got := b.At(i); got.Valid {
			t.Errorf("At(%d) should be empty, got %v", i, got)
		}
	}
}

func TestBatchPutPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative offset", func() { NewBatch(4).Put(-1, Token{Valid: true}) }},
		{"offset at N", func() { NewBatch(4).Put(4, Token{Valid: true}) }},
		{"out of order", func() {
			b := NewBatch(8)
			b.Put(5, Token{Valid: true})
			b.Put(5, Token{Valid: true})
		}},
		{"decreasing", func() {
			b := NewBatch(8)
			b.Put(5, Token{Valid: true})
			b.Put(2, Token{Valid: true})
		}},
		{"zero batch", func() { NewBatch(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestBatchReset(t *testing.T) {
	b := NewBatch(8)
	b.Put(1, Token{Data: 1, Valid: true})
	b.Reset(4)
	if b.N != 4 || !b.IsEmpty() {
		t.Errorf("after Reset: N=%d occupied=%d", b.N, b.Occupied())
	}
	b.Put(0, Token{Data: 2, Valid: true}) // re-put at low offset must work after reset
	if got := b.At(0).Data; got != 2 {
		t.Errorf("At(0).Data = %d, want 2", got)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	// Property: FromDense(b.Dense()) reproduces b for any occupancy pattern.
	check := func(pattern uint16) bool {
		b := NewBatch(16)
		for i := 0; i < 16; i++ {
			if pattern&(1<<i) != 0 {
				b.Put(i, Token{Data: uint64(i) * 7, Valid: true, Last: i%3 == 0})
			}
		}
		rt := FromDense(b.Dense())
		if rt.N != b.N || rt.Occupied() != b.Occupied() {
			return false
		}
		for i := 0; i < 16; i++ {
			if rt.At(i) != b.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBatchCopyIsDeep(t *testing.T) {
	b := NewBatch(8)
	b.Put(2, Token{Data: 42, Valid: true})
	c := b.Copy()
	c.Slots[0].Tok.Data = 99
	if b.At(2).Data != 42 {
		t.Error("Copy shares slot storage with original")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(3)
	if q.Len() != 0 || q.Cap() != 3 {
		t.Fatalf("fresh queue Len=%d Cap=%d", q.Len(), q.Cap())
	}
	for i := 0; i < 3; i++ {
		if !q.Push(Token{Data: uint64(i), Valid: true}) {
			t.Fatalf("Push %d failed", i)
		}
	}
	if q.Push(Token{Valid: true}) {
		t.Error("Push into full queue succeeded")
	}
	if !q.Full() {
		t.Error("queue should report full")
	}
	for i := 0; i < 3; i++ {
		tok, ok := q.Pop()
		if !ok || tok.Data != uint64(i) {
			t.Fatalf("Pop %d = %v, %v", i, tok, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop from empty queue succeeded")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue(2)
	for round := 0; round < 10; round++ {
		q.Push(Token{Data: uint64(round), Valid: true})
		tok, ok := q.Pop()
		if !ok || tok.Data != uint64(round) {
			t.Fatalf("round %d: got %v, %v", round, tok, ok)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue succeeded")
	}
	q.Push(Token{Data: 5, Valid: true})
	tok, ok := q.Peek()
	if !ok || tok.Data != 5 {
		t.Errorf("Peek = %v, %v", tok, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek consumed the token")
	}
}

// Property: queue never loses or reorders tokens under arbitrary
// push/pop interleavings.
func TestQueueOrderProperty(t *testing.T) {
	check := func(ops []bool) bool {
		q := NewQueue(8)
		next := uint64(0)   // next value to push
		expect := uint64(0) // next value we must pop
		for _, push := range ops {
			if push {
				if q.Push(Token{Data: next, Valid: true}) {
					next++
				}
			} else if tok, ok := q.Pop(); ok {
				if tok.Data != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFilter(t *testing.T) {
	b := NewBatch(10)
	for i := 0; i < 10; i += 2 {
		b.Put(i, Token{Data: uint64(i), Valid: true})
	}
	b.Filter(func(offset int, tok Token) bool { return offset != 4 })
	if b.Occupied() != 4 {
		t.Fatalf("Filter kept %d slots, want 4", b.Occupied())
	}
	if b.At(4).Valid {
		t.Error("filtered slot still present")
	}
	for _, off := range []int{0, 2, 6, 8} {
		if !b.At(off).Valid || b.At(off).Data != uint64(off) {
			t.Errorf("slot %d perturbed by Filter: %v", off, b.At(off))
		}
	}
	// Ordering invariant must survive so further Puts work.
	b2 := NewBatch(4)
	b2.Filter(func(int, Token) bool { return false })
	b2.Put(1, Token{Data: 7, Valid: true})
}

func TestMutate(t *testing.T) {
	b := NewBatch(8)
	b.Put(1, Token{Data: 0x10, Valid: true})
	b.Put(3, Token{Data: 0x30, Valid: true, Last: true})
	b.Put(5, Token{Data: 0x50, Valid: true})
	b.Mutate(func(offset int, tok Token) Token {
		switch offset {
		case 1:
			tok.Data ^= 0xff // corrupt
		case 3:
			tok.Valid = false // drop
		}
		return tok
	})
	if got := b.At(1).Data; got != 0x10^0xff {
		t.Errorf("corrupted token data = %#x, want %#x", got, 0x10^0xff)
	}
	if b.At(3).Valid {
		t.Error("dropped token still present")
	}
	if got := b.At(5).Data; got != 0x50 {
		t.Errorf("untouched token perturbed: %#x", got)
	}
	if b.Occupied() != 2 {
		t.Errorf("Occupied = %d, want 2", b.Occupied())
	}
}
