package soc

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// maxConsoleBytes bounds the restored UART backlog.
const maxConsoleBytes = 1 << 26

// Save serialises the whole blade: blade-level state (cycle, halt latch,
// console), then each subsystem in a fixed order — DRAM, L2, every core
// (hart, L1I, L1D, busy time), NIC, block device, and finally any
// registered accelerator devices in ascending MMIO-base order. Devices
// must implement snapshot.Snapshotter; a blade carrying one that does not
// cannot be checkpointed, and Save says which.
func (s *SoC) Save(w *snapshot.Writer) error {
	w.Begin("soc.SoC", 1)
	w.U64(uint64(s.cycle))
	w.Bool(s.halted)
	w.Bytes(s.console)
	if err := s.dram.Save(w); err != nil {
		return err
	}
	if err := s.l2.Save(w); err != nil {
		return err
	}
	w.Uvarint(uint64(len(s.cores)))
	for _, c := range s.cores {
		if err := c.cpu.Save(w); err != nil {
			return err
		}
		if err := c.bus.l1i.Save(w); err != nil {
			return err
		}
		if err := c.bus.l1d.Save(w); err != nil {
			return err
		}
		w.U64(uint64(c.busyUntil))
	}
	if err := s.nic.Save(w); err != nil {
		return err
	}
	if err := s.bdev.Save(w); err != nil {
		return err
	}
	w.Uvarint(uint64(len(s.devices)))
	for _, sl := range s.devices {
		dev, ok := sl.dev.(snapshot.Snapshotter)
		if !ok {
			return fmt.Errorf("soc %s: device at %#x is not snapshottable", s.cfg.Name, sl.base)
		}
		w.U64(sl.base)
		if err := dev.Save(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// Restore overwrites the blade's state from r. The blade must have been
// rebuilt from the same Config (same core count, same registered
// devices); structural mismatches are reported, not papered over.
func (s *SoC) Restore(r *snapshot.Reader) error {
	if err := r.Begin("soc.SoC", 1); err != nil {
		return err
	}
	cycle := clock.Cycles(r.U64())
	halted := r.Bool()
	console := r.Bytes(maxConsoleBytes)
	if err := r.Err(); err != nil {
		return err
	}
	if err := s.dram.Restore(r); err != nil {
		return err
	}
	if err := s.l2.Restore(r); err != nil {
		return err
	}
	ncores := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if ncores != uint64(len(s.cores)) {
		return fmt.Errorf("soc %s: checkpoint has %d cores, blade has %d", s.cfg.Name, ncores, len(s.cores))
	}
	for _, c := range s.cores {
		if err := c.cpu.Restore(r); err != nil {
			return err
		}
		if err := c.bus.l1i.Restore(r); err != nil {
			return err
		}
		if err := c.bus.l1d.Restore(r); err != nil {
			return err
		}
		c.busyUntil = clock.Cycles(r.U64())
	}
	if err := s.nic.Restore(r); err != nil {
		return err
	}
	if err := s.bdev.Restore(r); err != nil {
		return err
	}
	ndev := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if ndev != uint64(len(s.devices)) {
		return fmt.Errorf("soc %s: checkpoint has %d devices, blade has %d", s.cfg.Name, ndev, len(s.devices))
	}
	for i := uint64(0); i < ndev; i++ {
		base := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		dev := s.deviceAt(base)
		if dev == nil {
			return fmt.Errorf("soc %s: checkpoint device at %#x not registered on this blade", s.cfg.Name, base)
		}
		snap, ok := dev.(snapshot.Snapshotter)
		if !ok {
			return fmt.Errorf("soc %s: device at %#x is not snapshottable", s.cfg.Name, base)
		}
		if err := snap.Restore(r); err != nil {
			return err
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.cycle = cycle
	s.halted = halted
	s.console = console
	return nil
}
