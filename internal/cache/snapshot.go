package cache

import (
	"fmt"

	"repro/internal/snapshot"
)

// Save serialises the cache's tag/LRU/dirty state densely, plus the LRU
// tick and counters. Geometry (set count, ways) is written so a restore
// into a differently-shaped cache fails loudly instead of silently
// reinterpreting lines.
func (c *Cache) Save(w *snapshot.Writer) error {
	w.Begin("cache.Cache", 1)
	w.Uvarint(uint64(len(c.sets)))
	w.Uvarint(uint64(c.cfg.Ways))
	w.U64(c.tick)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Writebacks)
	for _, ways := range c.sets {
		for _, ln := range ways {
			w.U64(ln.tag)
			w.Bool(ln.valid)
			w.Bool(ln.dirty)
			w.U64(ln.lru)
		}
	}
	return w.Err()
}

// Restore overwrites the cache's line state from r, verifying geometry.
func (c *Cache) Restore(r *snapshot.Reader) error {
	if err := r.Begin("cache.Cache", 1); err != nil {
		return err
	}
	nsets := r.Uvarint()
	ways := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nsets != uint64(len(c.sets)) || ways != uint64(c.cfg.Ways) {
		return fmt.Errorf("cache %s: checkpoint geometry %dx%d, cache is %dx%d",
			c.cfg.Name, nsets, ways, len(c.sets), c.cfg.Ways)
	}
	tick := r.U64()
	var stats Stats
	stats.Hits = r.U64()
	stats.Misses = r.U64()
	stats.Writebacks = r.U64()
	fresh := make([][]line, len(c.sets))
	for s := range fresh {
		fresh[s] = make([]line, c.cfg.Ways)
		for i := range fresh[s] {
			fresh[s][i] = line{
				tag:   r.U64(),
				valid: r.Bool(),
				dirty: r.Bool(),
				lru:   r.U64(),
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.tick = tick
	c.stats = stats
	c.sets = fresh
	c.gen++ // residency may have changed wholesale; invalidate Lookup handles
	return nil
}
