package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/token"
)

// TestBridgeSteadyStateZeroAlloc is the fast-path allocation gate: once a
// bridge pair has warmed up (handshake done, scratch buffers and resend
// ring at capacity), a full exchange — encode, submit to the persistent
// writer, read the peer's frame, commit — must not allocate. AllocsPerRun
// counts process-global mallocs, so the background peer drives the same
// alloc-free path with preallocated batches. Timeouts stay zero: arming a
// net.Pipe deadline allocates a timer, and the production coordinator path
// measures its deadlines against real conns, not this gate.
func TestBridgeSteadyStateZeroAlloc(t *testing.T) {
	c1, c2 := net.Pipe()
	const n = 64

	peer := NewBridge("peer", c2)
	peerIn := []*token.Batch{token.NewBatch(n)}
	peerOut := []*token.Batch{token.NewBatch(n)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for peer.Err() == nil {
			select {
			case <-stop:
				return
			default:
			}
			peerIn[0].Reset(n)
			peerIn[0].Put(1, token.Token{Data: 42, Valid: true})
			peer.TickBatch(n, peerIn, peerOut)
		}
	}()

	br := NewBridge("local", c1)
	in := []*token.Batch{token.NewBatch(n)}
	out := []*token.Batch{token.NewBatch(n)}
	tick := func() {
		in[0].Reset(n)
		in[0].Put(0, token.Token{Data: 7, Valid: true})
		in[0].Put(1, token.Token{Data: 8, Valid: true})
		in[0].Put(2, token.Token{Data: 9, Valid: true, Last: true})
		br.TickBatch(n, in, out)
	}
	// Warm up past one full lap of the resend ring so every retained
	// frame buffer has reached capacity.
	for i := 0; i < 2*br.cfg.ResendWindow; i++ {
		tick()
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, tick)
	close(stop)
	br.Close()
	peer.Close()
	wg.Wait()
	if allocs != 0 {
		t.Errorf("steady-state exchange allocates %.1f times per tick, want 0", allocs)
	}
}

// recordingConn wraps a conn and keeps every byte read from it, so a test
// can recover exact frame boundaries from a bufio consumer by subtracting
// its buffered remainder.
type recordingConn struct {
	net.Conn
	mu  sync.Mutex
	got []byte
}

func (c *recordingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.got = append(c.got, p[:n]...)
	c.mu.Unlock()
	return n, err
}

func (c *recordingConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.got...)
}

// TestBridgeResendBytesIdentical pins the resend ring's core guarantee:
// frames retransmitted during a resync are byte-identical to their
// original transmissions (the ring stores encoded frames with absolute
// sequence numbers; a resync is a memcpy, not a re-encode). A scripted raw
// peer records the bridge's frames, drops the connection, rewinds its
// resume point on the re-handshake, and compares the retransmissions
// byte-for-byte.
func TestBridgeResendBytesIdentical(t *testing.T) {
	const n = 16
	const rounds = 3

	c1, c2 := net.Pipe()
	rec := &recordingConn{Conn: c2}

	// readFrames reads count frames through r from the recorded conn,
	// returning each frame's raw bytes (frame boundaries recovered as
	// recorded-total minus bufio's unread remainder) and decoded sequence
	// number.
	readFrames := func(src *recordingConn, r *bufio.Reader, prevEnd int, count int) (frames [][]byte, seqs []uint64, end int) {
		for i := 0; i < count; i++ {
			seq, err := readFrameSeq(r)
			if err != nil {
				t.Errorf("peer read seq: %v", err)
				return
			}
			var b token.Batch
			if err := readBatchV3(r, &b); err != nil {
				t.Errorf("peer read batch: %v", err)
				return
			}
			all := src.bytes()
			frameEnd := len(all) - r.Buffered()
			frames = append(frames, append([]byte(nil), all[prevEnd:frameEnd]...))
			seqs = append(seqs, seq)
			prevEnd = frameEnd
		}
		return frames, seqs, prevEnd
	}

	type peerResult struct {
		orig, resent [][]byte
	}
	resultCh := make(chan peerResult, 1)
	redialCh := make(chan io.ReadWriter, 1)

	go func() {
		var res peerResult
		defer func() { resultCh <- res }()

		peerHello(rec, n, 0, 0)
		r := bufio.NewReader(rec)
		handshakeEnd := len(rec.bytes()) - r.Buffered()

		// Rounds 0..2: read the bridge's frame, record it, reply.
		var end = handshakeEnd
		var frames [][]byte
		for round := 0; round < rounds; round++ {
			var fs [][]byte
			fs, _, end = readFrames(rec, r, end, 1)
			frames = append(frames, fs...)
			reply := token.NewBatch(n)
			reply.Put(0, token.Token{Data: 100 + uint64(round), Valid: true})
			if _, err := rec.Write(appendFrame(nil, uint64(round), reply)); err != nil {
				t.Errorf("peer write: %v", err)
				return
			}
		}
		res.orig = frames

		// Drop the connection out from under the bridge, then accept its
		// redial and claim on the re-handshake that only batch 0 was
		// committed: batches 1 and 2 must be retransmitted before batch 3.
		rec.Close()
		c3, c4 := net.Pipe()
		rec2 := &recordingConn{Conn: c4}
		redialCh <- c3
		peerHello2 := func() {
			var hello [32]byte
			copy(hello[:], helloBytes(n, 0, 1)) // resume = 1
			done := make(chan error, 1)
			go func() { _, err := rec2.Write(hello[:]); done <- err }()
			var got [helloSize]byte
			if _, err := io.ReadFull(rec2, got[:]); err != nil {
				t.Errorf("peer re-handshake read: %v", err)
			}
			<-done
		}
		peerHello2()
		r2 := bufio.NewReader(rec2)
		end2 := len(rec2.bytes()) - r2.Buffered()
		var fs [][]byte
		var seqs []uint64
		fs, seqs, _ = readFrames(rec2, r2, end2, rounds) // frames 1, 2, 3
		if len(seqs) == rounds && (seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3) {
			t.Errorf("resync sequence numbers = %v, want [1 2 3]", seqs)
		}
		res.resent = fs
		reply := token.NewBatch(n)
		reply.Put(0, token.Token{Data: 103, Valid: true})
		rec2.Write(appendFrame(nil, rounds, reply))
	}()

	br := NewBridgeConfig("pin", c1, BridgeConfig{
		MaxReconnects: 3,
		BackoffBase:   1,
		Redial: func() (io.ReadWriter, error) {
			return <-redialCh, nil
		},
	})
	for round := 0; round <= rounds; round++ {
		out := tickOnce(br, n, uint64(round)*1000)
		if br.Err() != nil {
			t.Fatalf("round %d: %v", round, br.Err())
		}
		if !out.At(0).Valid {
			t.Fatalf("round %d: no token from peer", round)
		}
	}
	res := <-resultCh
	if len(res.orig) != rounds || len(res.resent) != rounds {
		t.Fatalf("peer recorded %d original / %d resync frames, want %d / %d",
			len(res.orig), len(res.resent), rounds, rounds)
	}
	// Resync frames 1 and 2 are retransmissions: byte-identical to the
	// originals. Frame 3 is new.
	for i := 1; i < rounds; i++ {
		if !bytes.Equal(res.orig[i], res.resent[i-1]) {
			t.Errorf("retransmitted frame %d differs from original:\norig:   %x\nresent: %x",
				i, res.orig[i], res.resent[i-1])
		}
	}
}

// helloBytes builds a raw hello frame for scripted peers.
func helloBytes(step int, topoHash, resume uint64) []byte {
	hello := make([]byte, helloSize)
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	binary.BigEndian.PutUint16(hello[4:6], helloVersion)
	binary.BigEndian.PutUint32(hello[8:12], uint32(step))
	binary.BigEndian.PutUint64(hello[16:24], topoHash)
	binary.BigEndian.PutUint64(hello[24:32], resume)
	return hello
}
