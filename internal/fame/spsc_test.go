package fame

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/token"
)

func TestSPSCRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ min, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {17, 32},
	} {
		if got := newSPSCRing(tc.min).cap(); got != tc.want {
			t.Errorf("newSPSCRing(%d).cap() = %d, want %d", tc.min, got, tc.want)
		}
	}
}

func TestSPSCRingFullEmptyAndWraparound(t *testing.T) {
	q := newSPSCRing(4)
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}

	// Drive well past capacity so the cursors wrap the buffer many times,
	// keeping the ring one short of full to exercise the cached-cursor
	// reload on both sides.
	batches := make([]*token.Batch, 64)
	for i := range batches {
		batches[i] = token.NewBatch(1)
	}
	next := 0
	for i := 0; i < 3; i++ {
		if !q.push(batches[next]) {
			t.Fatalf("push %d failed on non-full ring", next)
		}
		next++
	}
	read := 0
	for next < len(batches) {
		if !q.push(batches[next]) {
			t.Fatalf("push %d failed with %d in flight", next, q.len())
		}
		next++
		got, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d failed with %d in flight", read, q.len())
		}
		if got != batches[read] {
			t.Fatalf("pop %d returned wrong batch (FIFO order broken)", read)
		}
		read++
	}
	for read < len(batches) {
		got, ok := q.pop()
		if !ok {
			t.Fatalf("drain pop %d failed", read)
		}
		if got != batches[read] {
			t.Fatalf("drain pop %d returned wrong batch", read)
		}
		read++
	}
	if _, ok := q.pop(); ok {
		t.Fatal("ring not empty after draining everything")
	}

	// Full ring must reject the overflow push and accept it after one pop.
	for i := 0; i < q.cap(); i++ {
		if !q.push(batches[i]) {
			t.Fatalf("refill push %d failed", i)
		}
	}
	if q.push(batches[q.cap()]) {
		t.Fatal("push on full ring succeeded")
	}
	if _, ok := q.pop(); !ok {
		t.Fatal("pop on full ring failed")
	}
	if !q.push(batches[q.cap()]) {
		t.Fatal("push after pop failed")
	}
}

// TestSPSCRingConcurrent streams batches through a small ring from a
// producer goroutine to a consumer goroutine; under -race this also
// checks the publication ordering of the slot writes against the cursor
// stores.
func TestSPSCRingConcurrent(t *testing.T) {
	const total = 10000
	q := newSPSCRing(8)
	batches := make([]*token.Batch, total)
	for i := range batches {
		b := token.NewBatch(1)
		b.Put(0, token.Token{Data: uint64(i), Valid: true})
		batches[i] = b
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			got, ok := q.pop()
			for !ok {
				runtime.Gosched()
				got, ok = q.pop()
			}
			if got != batches[i] || got.Slots[0].Tok.Data != uint64(i) {
				done <- fmt.Errorf("FIFO order broken at element %d", i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		for !q.push(batches[i]) {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if q.len() != 0 {
		t.Fatalf("ring holds %d batches after balanced push/pop", q.len())
	}
}

// TestSPSCRingInvalidCapPanics pins the satellite fix: a non-positive
// capacity request used to fall through the power-of-two rounding loop
// and silently return a capacity-1 ring, violating the link sizing
// invariant without a signal. It must now fail loudly at construction.
func TestSPSCRingInvalidCapPanics(t *testing.T) {
	for _, bad := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newSPSCRing(%d) did not panic", bad)
				}
			}()
			newSPSCRing(bad)
		}()
	}
}

// TestRingPairSizing documents the cross-worker link sizing invariant:
// the data ring holds depth+1+slack slots (depth seeded batches plus one
// transient push-before-pop slot plus the configured slack) and the free
// ring depth+3+slack (the whole circulating population, strictly), with
// the free ring topped up to exactly `slack` spares. Draining and
// rebuilding must keep the population fixed — repeated RunParallel calls
// may not grow the recycle pool.
func TestRingPairSizing(t *testing.T) {
	for _, slack := range []int{0, 2, 5} {
		r, _, _ := pulsePair()
		if err := r.SetRingSlack(slack); err != nil {
			t.Fatal(err)
		}
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		ch := r.outCh[0][0]
		if ch == nil {
			t.Fatal("pulsePair endpoint 0 port 0 has no output channel")
		}
		depth := int(ch.latency / r.step)
		if got := ch.queue.len(); got != depth {
			t.Fatalf("slack=%d: channel seeded with %d batches, want depth %d", slack, got, depth)
		}

		rp, err := r.newRingPair(ch, nil)
		if err != nil {
			t.Fatalf("slack=%d: %v", slack, err)
		}
		if got, min := rp.data.cap(), depth+1+slack; got < min {
			t.Errorf("slack=%d: data cap %d < depth+1+slack = %d", slack, got, min)
		}
		if got, min := rp.free.cap(), depth+3+slack; got < min {
			t.Errorf("slack=%d: free cap %d < depth+3+slack = %d", slack, got, min)
		}
		if got := rp.data.len(); got != depth {
			t.Errorf("slack=%d: data ring seeded with %d batches, want depth %d", slack, got, depth)
		}
		if got := rp.free.len(); got != slack {
			t.Errorf("slack=%d: free ring topped up to %d spares, want %d", slack, got, slack)
		}

		// Drain: the in-flight population returns to the channel queue and
		// the spares land in the recycle pool.
		rp.drain()
		if got := ch.queue.len(); got != depth {
			t.Errorf("slack=%d: drain left %d batches in flight, want %d", slack, got, depth)
		}
		if got := len(ch.free); got != slack {
			t.Errorf("slack=%d: drain recycled %d spares, want %d", slack, got, slack)
		}

		// Rebuild twice more: spares re-seed the free ring instead of being
		// topped up again, so the circulating population stays fixed.
		for i := 0; i < 2; i++ {
			rp, err = r.newRingPair(ch, nil)
			if err != nil {
				t.Fatalf("slack=%d rebuild %d: %v", slack, i, err)
			}
			if got := rp.free.len(); got != slack {
				t.Errorf("slack=%d rebuild %d: free population %d, want %d (must not grow)", slack, i, got, slack)
			}
			rp.drain()
			if got := len(ch.free); got != slack {
				t.Errorf("slack=%d rebuild %d: recycle pool %d, want %d (must not grow)", slack, i, got, slack)
			}
		}
	}
}
