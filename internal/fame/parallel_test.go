package fame

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/token"
)

// hub is a partition-test stub: an inert endpoint with an arbitrary port
// count, standing in for a switch (whose per-round cost scales with its
// port count).
type hub struct {
	name  string
	ports int
}

func (h *hub) Name() string                            { return h.name }
func (h *hub) NumPorts() int                           { return h.ports }
func (h *hub) TickBatch(n int, in, out []*token.Batch) {}

// starRunner builds the bench-like star: one hub with `leaves` ports, one
// single-port leaf endpoint per port.
func starRunner(t *testing.T, leaves int) *Runner {
	t.Helper()
	r := NewRunner()
	sw := &hub{name: "sw", ports: leaves}
	r.Add(sw)
	for i := 0; i < leaves; i++ {
		leaf := &hub{name: "leaf" + string(rune('a'+i)), ports: 1}
		r.Add(leaf)
		if err := r.Connect(leaf, 0, sw, i, 8); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSetWorkersValidation(t *testing.T) {
	r := NewRunner()
	if err := r.SetWorkers(-1); err == nil {
		t.Error("SetWorkers(-1) accepted")
	}
	if err := r.SetWorkers(0); err != nil {
		t.Errorf("SetWorkers(0) rejected: %v", err)
	}
	if got, want := r.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() with 0 = %d, want GOMAXPROCS %d", got, want)
	}
	if err := r.SetWorkers(3); err != nil {
		t.Fatal(err)
	}
	if got := r.Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

// TestPartitionProperties checks the partitioner invariants on the
// bench-like star: every endpoint appears exactly once, parts are in index
// order, the part count never exceeds the worker count, and the result is
// a pure function of the topology (two calls agree).
func TestPartitionProperties(t *testing.T) {
	r := starRunner(t, 8)
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 12; workers++ {
		parts := r.partition(workers)
		if len(parts) > workers {
			t.Fatalf("workers=%d: %d parts", workers, len(parts))
		}
		if again := r.partition(workers); !reflect.DeepEqual(parts, again) {
			t.Fatalf("workers=%d: partition not deterministic:\n%v\n%v", workers, parts, again)
		}
		seen := make(map[int]bool)
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatalf("workers=%d: empty part", workers)
			}
			for j, idx := range part {
				if j > 0 && part[j-1] >= idx {
					t.Fatalf("workers=%d: part %v not in index order", workers, part)
				}
				if seen[idx] {
					t.Fatalf("workers=%d: endpoint %d in two parts", workers, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != 9 {
			t.Fatalf("workers=%d: partition covers %d of 9 endpoints", workers, len(seen))
		}
	}
}

// TestPartitionCoLocatesLinkedPairs: with slack in the balance cap, the
// endpoints of a link must land on the same worker so the link needs no
// synchronization. A two-endpoint chain split across two of four workers
// would be the pathological case.
func TestPartitionCoLocatesLinkedPairs(t *testing.T) {
	r := NewRunner()
	var eps []*hub
	for i := 0; i < 8; i++ {
		e := &hub{name: "e" + string(rune('a'+i)), ports: 1}
		eps = append(eps, e)
		r.Add(e)
	}
	for i := 0; i < 8; i += 2 {
		if err := r.Connect(eps[i], 0, eps[i+1], 0, 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	parts := r.partition(4)
	owner := make(map[int]int)
	for w, part := range parts {
		for _, idx := range part {
			owner[idx] = w
		}
	}
	for i := 0; i < 8; i += 2 {
		if owner[i] != owner[i+1] {
			t.Errorf("linked pair (%d,%d) split across workers %d/%d (parts %v)", i, i+1, owner[i], owner[i+1], parts)
		}
	}
	if len(parts) != 4 {
		t.Errorf("got %d parts, want 4 (one pair each): %v", len(parts), parts)
	}
}

// buildSweepTopology is a star with real traffic: two sources and a wire
// feeding two sinks plus a cross link, exercising multiple link latencies
// (step = gcd = 8) and an endpoint mix that forces cross-worker rings for
// every worker count > 1.
func buildSweepTopology(t *testing.T, inject bool) (*Runner, *Sink, *Sink) {
	t.Helper()
	r := NewRunner()
	srcA := NewSource("srcA")
	srcB := NewSource("srcB")
	wire := NewWire("wire")
	sinkA := NewSink("sinkA")
	sinkB := NewSink("sinkB")
	for _, e := range []Endpoint{srcA, srcB, wire, sinkA, sinkB} {
		r.Add(e)
	}
	if err := r.Connect(srcA, 0, wire, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(wire, 1, sinkB, 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(srcB, 0, sinkA, 0, 24); err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 48; c++ {
		srcA.EmitAt(c, token.Token{Data: uint64(c) + 100, Valid: true, Last: c%4 == 3})
		srcB.EmitAt(c*2, token.Token{Data: uint64(c) + 500, Valid: true})
	}
	if inject {
		r.SetInjector(&dropOddInjector{mask: 0xff00})
	}
	return r, sinkA, sinkB
}

// testWorkerSweepEquivalence is the tentpole determinism contract: for
// every worker count (including counts above the endpoint count), with and
// without fault injection, RunParallel must deliver streams bit-identical
// to the sequential scheduler. On a single-core host this still exercises
// the multi-worker ring path — workers make progress via Gosched. The mux
// flag runs the same contract through the many-nodes-per-worker mode
// (TestMuxWorkerSweepEquivalence), which must be indistinguishable on
// every observable except the scheduling-unit count, asserted here too.
func testWorkerSweepEquivalence(t *testing.T, mux bool) {
	const numEndpoints = 5 // buildSweepTopology registers five
	for _, inject := range []bool{false, true} {
		ref, refA, refB := buildSweepTopology(t, inject)
		if err := ref.Run(240); err != nil {
			t.Fatal(err)
		}
		if len(refA.Received) == 0 || len(refB.Received) == 0 {
			t.Fatal("reference run delivered no tokens")
		}
		for workers := 1; workers <= 7; workers++ {
			r, sa, sb := buildSweepTopology(t, inject)
			if err := r.SetWorkers(workers); err != nil {
				t.Fatal(err)
			}
			r.SetMultiplexed(mux)
			if err := r.RunParallel(240); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refA.Received, sa.Received) {
				t.Errorf("inject=%v workers=%d: sinkA diverged from sequential", inject, workers)
			}
			if !reflect.DeepEqual(refB.Received, sb.Received) {
				t.Errorf("inject=%v workers=%d: sinkB diverged from sequential", inject, workers)
			}
			// Accounting: the effective worker count is what actually ran
			// (capped at the endpoint count, empty bins dropped), and the
			// scheduling-unit count is per-endpoint in pool mode but
			// per-worker in multiplexed mode.
			eff := r.EffectiveWorkers()
			if eff < 1 || eff > workers || eff > numEndpoints {
				t.Errorf("inject=%v workers=%d: EffectiveWorkers() = %d out of range [1, min(%d, %d)]",
					inject, workers, eff, workers, numEndpoints)
			}
			wantUnits := numEndpoints
			if mux && eff > 1 {
				wantUnits = eff
			}
			if got := r.SchedUnits(); got != wantUnits {
				t.Errorf("inject=%v workers=%d mux=%v: SchedUnits() = %d, want %d",
					inject, workers, mux, got, wantUnits)
			}
		}
	}
}

func TestWorkerSweepEquivalence(t *testing.T) { testWorkerSweepEquivalence(t, false) }

// testCheckpointMidParallel is the keystone snapshot property under
// the worker pool: checkpoint between RunParallel batches with forced
// multi-worker scheduling, restore, re-run — state bytes must match the
// uninterrupted run exactly. This is what requires runParallel to drain
// its rings back into the persistent channel queues. The mux flag holds
// the multiplexed mode to the identical contract
// (TestMuxCheckpointMidRun).
func testCheckpointMidParallel(t *testing.T, mux bool) {
	const n, m = 64, 128
	save := func(r *Runner, a, z *pulse) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
		if err != nil {
			t.Fatal(err)
		}
		w.Section("state")
		for _, s := range []snapshot.Snapshotter{r, a, z} {
			if err := s.Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	r1, a1, z1 := pulsePair()
	if err := r1.SetWorkers(2); err != nil {
		t.Fatal(err)
	}
	r1.SetMultiplexed(mux)
	if err := r1.RunParallel(n); err != nil {
		t.Fatal(err)
	}
	ck := save(r1, a1, z1)
	if err := r1.RunParallel(m); err != nil {
		t.Fatal(err)
	}
	want := save(r1, a1, z1)

	for _, workers := range []int{1, 2, 3} {
		r2, a2, z2 := pulsePair()
		if err := r2.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		r2.SetMultiplexed(mux)
		rd, _, err := snapshot.NewReader(bytes.NewReader(ck))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		for _, s := range []snapshot.Snapshotter{r2, a2, z2} {
			if err := s.Restore(rd); err != nil {
				t.Fatal(err)
			}
		}
		if err := r2.RunParallel(m); err != nil {
			t.Fatal(err)
		}
		if got := save(r2, a2, z2); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: restored parallel run diverged from original", workers)
		}
	}
}

func TestCheckpointMidParallelWorkers(t *testing.T) { testCheckpointMidParallel(t, false) }

// testMultiWorkerMetrics forces the cross-worker ring path and holds it
// to the same fame_* contract the default path satisfies: exact
// round/cycle/token counters, one tick observation per sampled round per
// endpoint, and zero pool drops (the counted-error seeding satellite).
// With mux it holds the multiplexed mode's flattened accounting to the
// same numbers (TestMuxMetricsEquivalence).
func testMultiWorkerMetrics(t *testing.T, mux bool) {
	const latency = clock.Cycles(8)
	const cycles = clock.Cycles(8 * 50)

	seqReg := obs.NewRegistry("seq")
	seq, _ := buildObsTopology(t, latency, 20)
	seq.EnableMetrics(seqReg)
	if err := seq.Run(cycles); err != nil {
		t.Fatal(err)
	}
	ss := seqReg.Snapshot()

	for _, workers := range []int{2, 3} {
		parReg := obs.NewRegistry("par")
		par, _ := buildObsTopology(t, latency, 20)
		par.EnableMetrics(parReg)
		if err := par.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		par.SetMultiplexed(mux)
		if err := par.RunParallel(cycles); err != nil {
			t.Fatal(err)
		}
		ps := parReg.Snapshot()
		if got, want := ps.Counters["fame_rounds_total"], uint64(cycles/latency); got != want {
			t.Errorf("workers=%d: fame_rounds_total = %d, want %d", workers, got, want)
		}
		if got := ps.Counters["fame_cycles_total"]; got != uint64(cycles) {
			t.Errorf("workers=%d: fame_cycles_total = %d, want %d", workers, got, cycles)
		}
		if got := ps.Gauges["fame_cycle"]; got != int64(cycles) {
			t.Errorf("workers=%d: fame_cycle = %d, want %d", workers, got, cycles)
		}
		if got := ps.Counters["fame_pool_drops_total"]; got != 0 {
			t.Errorf("workers=%d: fame_pool_drops_total = %d, want 0", workers, got)
		}
		if st, pt := ss.Counters["fame_tokens_total"], ps.Counters["fame_tokens_total"]; st != pt {
			t.Errorf("workers=%d: fame_tokens_total = %d, want %d", workers, pt, st)
		}
		wantTicks := sampledRounds(uint64(cycles / latency))
		for _, ep := range []string{"src", "wire", "sink"} {
			name := obs.Label("fame_tick_nanos", "endpoint", ep)
			if got := ps.Histograms[name].Count; got != wantTicks {
				t.Errorf("workers=%d: %s count = %d, want %d", workers, name, got, wantTicks)
			}
			tname := obs.Label("fame_endpoint_tokens_total", "endpoint", ep)
			if ss.Counters[tname] != ps.Counters[tname] {
				t.Errorf("workers=%d: %s diverged: seq=%d par=%d", workers, tname, ss.Counters[tname], ps.Counters[tname])
			}
		}
	}
}

func TestMultiWorkerMetricsEquivalence(t *testing.T) { testMultiWorkerMetrics(t, false) }

// TestRandomTopologyWorkerEquivalence reuses the property-test generator
// idea at a smaller scale: random stars, random worker counts, streams
// must match the sequential scheduler bit for bit.
func TestRandomTopologyWorkerEquivalence(t *testing.T) {
	for leaves := 2; leaves <= 5; leaves++ {
		build := func() (*Runner, []*Sink) {
			r := NewRunner()
			w := NewWire("w")
			r.Add(w)
			src := NewSource("src")
			r.Add(src)
			if err := r.Connect(src, 0, w, 0, 8); err != nil {
				t.Fatal(err)
			}
			var sinks []*Sink
			s := NewSink("s0")
			r.Add(s)
			sinks = append(sinks, s)
			if err := r.Connect(w, 1, s, 0, 8); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < leaves; i++ {
				extra := NewSource("x" + string(rune('0'+i)))
				es := NewSink("xs" + string(rune('0'+i)))
				r.Add(extra)
				r.Add(es)
				if err := r.Connect(extra, 0, es, 0, clock.Cycles(8*i)); err != nil {
					t.Fatal(err)
				}
				extra.EmitPacketAt(int64(i)*3, []uint64{uint64(i), uint64(i) * 7})
				sinks = append(sinks, es)
			}
			src.EmitPacketAt(1, []uint64{1, 2, 3})
			src.EmitPacketAt(33, []uint64{4})
			return r, sinks
		}
		ref, refSinks := build()
		if err := ref.Run(24 * 8); err != nil {
			t.Fatal(err)
		}
		for workers := 2; workers <= 4; workers++ {
			r, sinks := build()
			if err := r.SetWorkers(workers); err != nil {
				t.Fatal(err)
			}
			if err := r.RunParallel(24 * 8); err != nil {
				t.Fatal(err)
			}
			for i := range sinks {
				if !reflect.DeepEqual(refSinks[i].Received, sinks[i].Received) {
					t.Errorf("leaves=%d workers=%d sink %d diverged", leaves, workers, i)
				}
			}
		}
	}
}

// TestParallelKnobValidation covers the tuning-knob surface: negative
// values are rejected, accepted values round-trip through the accessors,
// and the multiplexed toggle reads back.
func TestParallelKnobValidation(t *testing.T) {
	r := NewRunner()
	if err := r.SetRingSlack(-1); err == nil {
		t.Error("SetRingSlack(-1) accepted")
	}
	if err := r.SetRingSlack(4); err != nil {
		t.Fatal(err)
	}
	if got := r.RingSlack(); got != 4 {
		t.Errorf("RingSlack() = %d, want 4", got)
	}
	if err := r.SetBalanceSlackPct(-1); err == nil {
		t.Error("SetBalanceSlackPct(-1) accepted")
	}
	if err := r.SetBalanceSlackPct(50); err != nil {
		t.Fatal(err)
	}
	if got := r.BalanceSlackPct(); got != 50 {
		t.Errorf("BalanceSlackPct() = %d, want 50", got)
	}
	if r.Multiplexed() {
		t.Error("Multiplexed() true by default")
	}
	r.SetMultiplexed(true)
	if !r.Multiplexed() {
		t.Error("SetMultiplexed(true) did not stick")
	}
}

// TestPartitionEdgeCases pins the partitioner's behaviour at the corners
// the sweep topologies never reach: an endpoint heavier than the balance
// cap, more workers than endpoints, zero-port endpoints, and a chain that
// saturates the cap. Each case asserts coverage (every endpoint exactly
// once), the balance bound, and determinism.
func TestPartitionEdgeCases(t *testing.T) {
	cover := func(t *testing.T, r *Runner, parts [][]int, workers int) map[int]int {
		t.Helper()
		if len(parts) > workers {
			t.Fatalf("%d parts for %d workers", len(parts), workers)
		}
		if again := r.partition(workers); !reflect.DeepEqual(parts, again) {
			t.Fatalf("partition not deterministic:\n%v\n%v", parts, again)
		}
		owner := make(map[int]int)
		for w, part := range parts {
			if len(part) == 0 {
				t.Fatalf("empty part in %v", parts)
			}
			for _, idx := range part {
				if _, dup := owner[idx]; dup {
					t.Fatalf("endpoint %d in two parts: %v", idx, parts)
				}
				owner[idx] = w
			}
		}
		if len(owner) != len(r.endpoints) {
			t.Fatalf("partition covers %d of %d endpoints: %v", len(owner), len(r.endpoints), parts)
		}
		return owner
	}

	t.Run("heavy endpoint exceeds cap", func(t *testing.T) {
		// Hub weight 16 > cap ceil(32/4)=8: it cannot merge or share, so
		// it must sit alone while the leaves level the remaining bins.
		r := starRunner(t, 16)
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		parts := r.partition(4)
		owner := cover(t, r, parts, 4)
		hubPart := parts[owner[0]]
		if len(hubPart) != 1 {
			t.Errorf("over-cap hub shares a part: %v", hubPart)
		}
		for w, part := range parts {
			if w == owner[0] {
				continue
			}
			if len(part) > 8 { // leaf weight 1 each; cap is 8
				t.Errorf("leaf part %d weight %d exceeds cap 8", w, len(part))
			}
		}
	})

	t.Run("workers exceed endpoints", func(t *testing.T) {
		r, _, _ := buildSweepTopology(t, false)
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		parts := r.partition(12)
		cover(t, r, parts, 12)
		if len(parts) > 5 {
			t.Errorf("%d parts for 5 endpoints", len(parts))
		}
	})

	t.Run("zero-port endpoints", func(t *testing.T) {
		// Zero-port endpoints weigh 1 (cost floor), partition cleanly,
		// and run without port bindings in both scheduler modes.
		r := NewRunner()
		a := NewSource("a")
		z := NewSink("z")
		idle1 := &hub{name: "idle1", ports: 0}
		idle2 := &hub{name: "idle2", ports: 0}
		for _, e := range []Endpoint{a, idle1, z, idle2} {
			r.Add(e)
		}
		if err := r.Connect(a, 0, z, 0, 8); err != nil {
			t.Fatal(err)
		}
		a.EmitAt(0, token.Token{Data: 9, Valid: true})
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		cover(t, r, r.partition(3), 3)
		for _, mux := range []bool{false, true} {
			if err := r.SetWorkers(3); err != nil {
				t.Fatal(err)
			}
			r.SetMultiplexed(mux)
			if err := r.RunParallel(16); err != nil {
				t.Fatalf("mux=%v: %v", mux, err)
			}
		}
		if len(z.Received) != 1 {
			t.Errorf("sink received %d tokens, want 1", len(z.Received))
		}
	})

	t.Run("balance cap saturation", func(t *testing.T) {
		// A six-endpoint chain (two ports each, weight 2, cap 4): pairwise
		// merges land exactly on the cap, every further merge is refused,
		// and packing degenerates to one pair per worker — the fully
		// saturated fixed point.
		r := NewRunner()
		var eps []*hub
		for i := 0; i < 6; i++ {
			e := &hub{name: "c" + string(rune('0'+i)), ports: 2}
			eps = append(eps, e)
			r.Add(e)
		}
		for i := 0; i < 5; i++ {
			if err := r.Connect(eps[i], 1, eps[i+1], 0, 8); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		parts := r.partition(3)
		cover(t, r, parts, 3)
		if want := [][]int{{0, 1}, {2, 3}, {4, 5}}; !reflect.DeepEqual(parts, want) {
			t.Errorf("saturated chain packed %v, want %v", parts, want)
		}
	})
}

// TestPartitionPackingTieBreak is the packing-determinism golden: six
// equal-weight isolated endpoints onto three workers must round-robin by
// ascending index (the PackUnits tie-break the partitioner inherits), not
// land in whatever order a map iteration produced.
func TestPartitionPackingTieBreak(t *testing.T) {
	// partition is a pure function of endpoints and links; no build()
	// needed (a link-free topology would not build anyway).
	r := NewRunner()
	for i := 0; i < 6; i++ {
		r.Add(&hub{name: "i" + string(rune('0'+i)), ports: 1})
	}
	parts := r.partition(3)
	if want := [][]int{{0, 3}, {1, 4}, {2, 5}}; !reflect.DeepEqual(parts, want) {
		t.Errorf("tie-break packed %v, want %v", parts, want)
	}
}

// TestPartitionBalanceSlackCoLocates shows the balance-slack knob doing
// its one job: a linked pair whose merge the strict cap refuses co-locates
// once the cap is loosened, and the partition stays deterministic at every
// setting.
func TestPartitionBalanceSlackCoLocates(t *testing.T) {
	build := func() *Runner {
		r := NewRunner()
		a := &hub{name: "a", ports: 2}
		b := &hub{name: "b", ports: 2}
		c := &hub{name: "c", ports: 1}
		d := &hub{name: "d", ports: 1}
		for _, e := range []*hub{a, b, c, d} {
			r.Add(e)
		}
		if err := r.Connect(a, 0, b, 0, 8); err != nil {
			t.Fatal(err)
		}
		return r
	}
	ownerOf := func(r *Runner, slackPct int) (int, int) {
		if err := r.SetBalanceSlackPct(slackPct); err != nil {
			t.Fatal(err)
		}
		if err := r.build(); err != nil {
			t.Fatal(err)
		}
		parts := r.partition(2)
		owner := make(map[int]int)
		for w, part := range parts {
			for _, idx := range part {
				owner[idx] = w
			}
		}
		return owner[0], owner[1]
	}
	// total weight 6, 2 workers, cap 3: the a—b merge (weight 4) is
	// refused and worst-fit packing seeds a and b into different bins.
	if oa, ob := ownerOf(build(), 0); oa == ob {
		t.Errorf("strict cap: a and b co-located (slack should be required)")
	}
	// 50%% slack: cap 4, the merge fits, the pair shares a worker.
	if oa, ob := ownerOf(build(), 50); oa != ob {
		t.Errorf("50%% slack: linked pair a—b still split")
	}
}

// TestRingSlackEquivalence sweeps the tuning knobs across both scheduler
// modes: whatever slack the rings carry and however loose the balance
// cap, the streams must stay bit-identical to the sequential scheduler —
// the knobs are host-side only.
func TestRingSlackEquivalence(t *testing.T) {
	ref, refA, refB := buildSweepTopology(t, true)
	if err := ref.Run(240); err != nil {
		t.Fatal(err)
	}
	for _, mux := range []bool{false, true} {
		for _, ringSlack := range []int{1, 4} {
			for _, balancePct := range []int{0, 100} {
				r, sa, sb := buildSweepTopology(t, true)
				if err := r.SetWorkers(3); err != nil {
					t.Fatal(err)
				}
				r.SetMultiplexed(mux)
				if err := r.SetRingSlack(ringSlack); err != nil {
					t.Fatal(err)
				}
				if err := r.SetBalanceSlackPct(balancePct); err != nil {
					t.Fatal(err)
				}
				if err := r.RunParallel(240); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(refA.Received, sa.Received) || !reflect.DeepEqual(refB.Received, sb.Received) {
					t.Errorf("mux=%v ringSlack=%d balancePct=%d: streams diverged from sequential",
						mux, ringSlack, balancePct)
				}
			}
		}
	}
}
