package core

import (
	"testing"

	"repro/internal/manager"
	"repro/internal/softstack"
)

func TestRack(t *testing.T) {
	r := Rack("tor0", 8, QuadCore)
	if got := manager.CountServers(r); got != 8 {
		t.Errorf("rack has %d servers, want 8", got)
	}
	if err := manager.Validate(r); err != nil {
		t.Error(err)
	}
}

func TestTreeMatchesFigure10(t *testing.T) {
	topo, err := Tree([]int{4, 8, 32}, QuadCore)
	if err != nil {
		t.Fatal(err)
	}
	if got := manager.CountServers(topo); got != 1024 {
		t.Errorf("tree has %d servers, want 1024", got)
	}
	if got := manager.CountSwitches(topo); got != 37 {
		t.Errorf("tree has %d switches, want 37", got)
	}
}

func TestTreeEmpty(t *testing.T) {
	if _, err := Tree(nil, QuadCore); err == nil {
		t.Error("empty tree accepted")
	}
}

func TestDeployAndPing(t *testing.T) {
	c, err := Deploy(Rack("tor0", 4, QuadCore), DeployConfig{LinkLatency: 3200})
	if err != nil {
		t.Fatal(err)
	}
	nodes := Nodes(c)
	if len(nodes) != 4 {
		t.Fatalf("deployed %d nodes", len(nodes))
	}
	var res []softstack.PingResult
	nodes[0].Ping(0, nodes[3].IP(), 3, 50*3200, func(r []softstack.PingResult) { res = r })
	ok, err := c.RunUntil(func() bool { return res != nil }, 10_000_000)
	if err != nil || !ok {
		t.Fatalf("ping failed: %v", err)
	}
}

func TestMeasureRate(t *testing.T) {
	c, err := Deploy(Rack("tor0", 2, SingleCore), DeployConfig{LinkLatency: 6400})
	if err != nil {
		t.Fatal(err)
	}
	rate, err := MeasureRate(c, 640_000)
	if err != nil {
		t.Fatal(err)
	}
	if rate.EffectiveHz() <= 0 {
		t.Error("no measured rate")
	}
}
