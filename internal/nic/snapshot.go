package nic

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// maxFrameBytes bounds one packet in a checkpoint; anything larger than
// the receive packet buffer could never have existed in a live NIC.
const maxFrameBytes = 1 << 20

// Save serialises the full NIC state: controller queues, the send
// pipeline (staged packet bytes, DMA ready times, flit cursors), rate
// limiter, receive assembly and packet buffer, writer occupancy and
// counters. Config and the DMA port are wiring, re-established by the SoC
// rebuild.
func (n *NIC) Save(w *snapshot.Writer) error {
	w.Begin("nic.NIC", 1)
	w.Uvarint(uint64(len(n.sendReqs)))
	for _, rq := range n.sendReqs {
		w.U64(rq.addr)
		w.Uvarint(uint64(rq.len))
	}
	w.Uvarint(uint64(len(n.recvBufs)))
	for _, v := range n.recvBufs {
		w.U64(v)
	}
	w.Uvarint(uint64(len(n.sendComps)))
	for _, v := range n.sendComps {
		w.U64(v)
	}
	w.Uvarint(uint64(len(n.recvComps)))
	for _, v := range n.recvComps {
		w.U64(v)
	}
	w.U64(n.intrMask)

	w.Uvarint(uint64(len(n.pipeline)))
	for _, fl := range n.pipeline {
		w.Bytes(fl.data)
		w.U64(uint64(fl.readyAt))
		w.Uvarint(uint64(fl.flit))
	}
	w.Uvarint(uint64(n.rateK))
	w.Uvarint(uint64(n.rateP))
	w.I64(n.rateCounter)
	w.I64(n.rateBurst)

	w.Uvarint(uint64(len(n.rxAssembly)))
	for _, f := range n.rxAssembly {
		w.U64(f)
	}
	w.Uvarint(uint64(len(n.pktBuf)))
	for _, p := range n.pktBuf {
		w.Bytes(p.data)
	}
	w.U64(uint64(n.rxBusyUntil))
	w.U64(uint64(n.cycle))

	w.U64(n.stats.PacketsSent)
	w.U64(n.stats.PacketsRecv)
	w.U64(n.stats.FlitsSent)
	w.U64(n.stats.FlitsRecv)
	w.U64(n.stats.RecvDropped)
	w.U64(n.stats.RecvNoBuffer)
	w.U64(n.stats.SendRejected)
	return w.Err()
}

// Restore overwrites the NIC's state from r, enforcing the hardware queue
// capacities so a corrupted stream cannot inflate on-die buffers.
func (n *NIC) Restore(r *snapshot.Reader) error {
	if err := r.Begin("nic.NIC", 1); err != nil {
		return err
	}
	sendReqs := make([]sendReq, r.Count(sendReqQueueCap))
	for i := range sendReqs {
		sendReqs[i].addr = r.U64()
		sendReqs[i].len = int(r.Uvarint())
	}
	recvBufs := make([]uint64, r.Count(recvReqQueueCap))
	for i := range recvBufs {
		recvBufs[i] = r.U64()
	}
	sendComps := make([]uint64, r.Count(compQueueCap))
	for i := range sendComps {
		sendComps[i] = r.U64()
	}
	recvComps := make([]uint64, r.Count(compQueueCap))
	for i := range recvComps {
		recvComps[i] = r.U64()
	}
	intrMask := r.U64()

	pipeline := make([]*inflightSend, r.Count(readerDepth))
	for i := range pipeline {
		fl := &inflightSend{
			data:    r.Bytes(maxFrameBytes),
			readyAt: clock.Cycles(r.U64()),
			flit:    int(r.Uvarint()),
		}
		pipeline[i] = fl
	}
	rateK := uint32(r.Uvarint())
	rateP := uint32(r.Uvarint())
	rateCounter := r.I64()
	rateBurst := r.I64()

	rxAssembly := make([]uint64, r.Count(maxFrameBytes/8))
	for i := range rxAssembly {
		rxAssembly[i] = r.U64()
	}
	pktBuf := make([]recvPacket, r.Count(n.cfg.PacketBufBytes))
	pktBufBytes := 0
	for i := range pktBuf {
		pktBuf[i].data = r.Bytes(maxFrameBytes)
		pktBufBytes += len(pktBuf[i].data)
	}
	rxBusyUntil := clock.Cycles(r.U64())
	cycle := clock.Cycles(r.U64())

	var stats Stats
	stats.PacketsSent = r.U64()
	stats.PacketsRecv = r.U64()
	stats.FlitsSent = r.U64()
	stats.FlitsRecv = r.U64()
	stats.RecvDropped = r.U64()
	stats.RecvNoBuffer = r.U64()
	stats.SendRejected = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if rateP == 0 {
		return fmt.Errorf("nic: restored rate limiter period is zero")
	}
	if pktBufBytes > n.cfg.PacketBufBytes {
		return fmt.Errorf("nic: restored packet buffer holds %d bytes, capacity %d", pktBufBytes, n.cfg.PacketBufBytes)
	}
	for i, fl := range pipeline {
		if fl.flit < 0 || fl.flit > (len(fl.data)+7)/8 {
			return fmt.Errorf("nic: restored pipeline entry %d flit cursor %d out of range", i, fl.flit)
		}
	}
	n.sendReqs = sendReqs
	n.recvBufs = recvBufs
	n.sendComps = sendComps
	n.recvComps = recvComps
	n.intrMask = intrMask
	n.pipeline = pipeline
	n.rateK = rateK
	n.rateP = rateP
	n.rateCounter = rateCounter
	n.rateBurst = rateBurst
	n.rxAssembly = rxAssembly
	n.pktBuf = pktBuf
	n.pktBufBytes = pktBufBytes
	n.rxBusyUntil = rxBusyUntil
	n.cycle = cycle
	n.stats = stats
	return nil
}
