// Package manager implements the FireSim simulation manager (Section
// III-B3): users describe a datacenter topology programmatically — which
// switches connect to which servers and switches — and the manager runs
// the server configurations through the (modeled) FPGA build flow, maps
// the simulation onto (modeled) EC2 instances, assigns MAC and IP
// addresses, populates every switch's MAC table, instantiates the
// simulation, and runs workloads on it.
//
// The topology API mirrors the paper's Figure 4 almost line for line:
//
//	root := manager.NewSwitchNode("root")
//	level2 := make([]*manager.SwitchNode, 8)
//	for i := range level2 {
//	    level2[i] = manager.NewSwitchNode(fmt.Sprintf("tor%d", i))
//	    root.AddDownlinks(level2[i])
//	    for j := 0; j < 8; j++ {
//	        level2[i].AddDownlinks(manager.NewServerNode("", manager.QuadCore))
//	    }
//	}
package manager

import (
	"fmt"
)

// BladeType selects a server blade configuration (Table I allows 1-4
// cores plus optional accelerators).
type BladeType string

// Blade types available to topologies.
const (
	QuadCore   BladeType = "QuadCore"
	DualCore   BladeType = "DualCore"
	SingleCore BladeType = "SingleCore"
)

// Cores reports the core count for the blade type.
func (b BladeType) Cores() (int, error) {
	switch b {
	case QuadCore:
		return 4, nil
	case DualCore:
		return 2, nil
	case SingleCore:
		return 1, nil
	default:
		return 0, fmt.Errorf("manager: unknown blade type %q", b)
	}
}

// TopoNode is either a *SwitchNode or a *ServerNode.
type TopoNode interface {
	nodeName() string
}

// SwitchNode is a switch in the target topology.
type SwitchNode struct {
	// Name identifies the switch; empty names are auto-assigned.
	Name string
	// Downlinks are the children (servers or switches).
	Downlinks []TopoNode
}

// NewSwitchNode returns a switch with no downlinks.
func NewSwitchNode(name string) *SwitchNode { return &SwitchNode{Name: name} }

// AddDownlinks attaches children, exactly like the paper's
// add_downlinks().
func (s *SwitchNode) AddDownlinks(nodes ...TopoNode) {
	s.Downlinks = append(s.Downlinks, nodes...)
}

func (s *SwitchNode) nodeName() string { return s.Name }

// ServerNode is a simulated server blade in the target topology.
type ServerNode struct {
	// Name identifies the server; empty names are auto-assigned.
	Name string
	// Type selects the blade configuration.
	Type BladeType
}

// NewServerNode returns a server of the given blade type.
func NewServerNode(name string, t BladeType) *ServerNode {
	return &ServerNode{Name: name, Type: t}
}

func (s *ServerNode) nodeName() string { return s.Name }

// Validate walks the topology checking structural invariants: no nil or
// repeated nodes, no cycles, at least one server, and known blade types.
func Validate(root *SwitchNode) error {
	if root == nil {
		return fmt.Errorf("manager: nil root switch")
	}
	seen := make(map[TopoNode]bool)
	servers := 0
	var walk func(n TopoNode) error
	walk = func(n TopoNode) error {
		if n == nil {
			return fmt.Errorf("manager: nil topology node")
		}
		if seen[n] {
			return fmt.Errorf("manager: node %q appears twice in the topology", n.nodeName())
		}
		seen[n] = true
		switch v := n.(type) {
		case *SwitchNode:
			if len(v.Downlinks) == 0 {
				return fmt.Errorf("manager: switch %q has no downlinks", v.Name)
			}
			for _, c := range v.Downlinks {
				if err := walk(c); err != nil {
					return err
				}
			}
		case *ServerNode:
			servers++
			if _, err := v.Type.Cores(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("manager: unknown topology node type %T", n)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	if servers == 0 {
		return fmt.Errorf("manager: topology contains no servers")
	}
	return nil
}

// CountServers returns the number of server blades in the topology.
func CountServers(root *SwitchNode) int {
	n := 0
	var walk func(t TopoNode)
	walk = func(t TopoNode) {
		switch v := t.(type) {
		case *SwitchNode:
			for _, c := range v.Downlinks {
				walk(c)
			}
		case *ServerNode:
			n++
		}
	}
	walk(root)
	return n
}

// CountSwitches returns the number of switches in the topology.
func CountSwitches(root *SwitchNode) int {
	n := 0
	var walk func(t TopoNode)
	walk = func(t TopoNode) {
		if v, ok := t.(*SwitchNode); ok {
			n++
			for _, c := range v.Downlinks {
				walk(c)
			}
		}
	}
	walk(root)
	return n
}
