package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/softstack"
	"repro/internal/stats"
)

func init() {
	register("fig5", func(sc Scale) (Result, error) { return Fig5(sc) })
}

// Fig5Row is one point of Figure 5: ping latency vs configured link
// latency.
type Fig5Row struct {
	// LinkLatencyUs is the configured one-way link latency.
	LinkLatencyUs float64
	// IdealRTTUs is link latency times four plus two 10-cycle switch
	// crossings — the paper's "Ideal" line.
	IdealRTTUs float64
	// MeasuredRTTUs is the mean RTT reported by the simulated ping.
	MeasuredRTTUs float64
}

// Overhead returns measured minus ideal — the paper observes ~34 us of
// Linux networking stack and server latency.
func (r Fig5Row) Overhead() float64 { return r.MeasuredRTTUs - r.IdealRTTUs }

// Fig5Result is the full sweep.
type Fig5Result struct {
	Rows []Fig5Row
}

// Title implements Result.
func (Fig5Result) Title() string { return "Figure 5: Ping latency vs. configured link latency" }

// Render implements Result.
func (r Fig5Result) Render() string {
	t := stats.NewTable("Link latency (us)", "Ideal RTT (us)", "Measured RTT (us)", "Overhead (us)")
	for _, row := range r.Rows {
		t.AddRow(row.LinkLatencyUs, row.IdealRTTUs, row.MeasuredRTTUs, row.Overhead())
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: measured parallels ideal with a fixed ~34 us offset.\n")
	return b.String()
}

// Fig5 boots an 8-node single-ToR cluster, collects ping samples between
// two nodes at each configured link latency, ignores the first sample
// (ARP, as the paper does), and reports the average RTT.
func Fig5(sc Scale) (Fig5Result, error) {
	latenciesUs := []float64{1, 2, 5, 10, 20, 50}
	pings := 100
	if sc.Quick {
		latenciesUs = []float64{2, 10}
		pings = 10
	}
	clk := clock.New(clock.DefaultTargetClock)

	var out Fig5Result
	for _, latUs := range latenciesUs {
		lat := clk.CyclesInMicros(latUs)
		c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{
			LinkLatency:      lat,
			DisableStaticARP: true, // reproduce the ARP-on-first-sample artifact
		})
		if err != nil {
			return Fig5Result{}, err
		}
		src := c.Servers[0]
		dst := c.Servers[5]
		var res []softstack.PingResult
		interval := clk.CyclesInMicros(latUs*4 + 100)
		src.Ping(0, dst.IP(), pings+1, interval, func(r []softstack.PingResult) { res = r })
		deadline := clock.Cycles(pings+4) * (interval + 8*lat)
		ok, err := c.RunUntil(func() bool { return res != nil }, deadline)
		if err != nil {
			return Fig5Result{}, err
		}
		if !ok {
			return Fig5Result{}, fmt.Errorf("fig5: ping at %g us did not complete", latUs)
		}
		var sample stats.Sample
		for _, pr := range res[1:] { // ignore the first (ARP) sample
			sample.Add(clk.Micros(pr.RTT))
		}
		out.Rows = append(out.Rows, Fig5Row{
			LinkLatencyUs: latUs,
			IdealRTTUs:    latUs*4 + clk.Micros(2*10),
			MeasuredRTTUs: sample.Mean(),
		})
	}
	return out, nil
}
