package riscv

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// Save serialises the hart's full architectural and micro-architectural
// state: register file, PC, machine-mode CSRs, cycle counter, halt/WFI
// flags and the retirement counters. The bus and timing model are
// configuration, re-established by whoever rebuilds the SoC.
func (c *CPU) Save(w *snapshot.Writer) error {
	w.Begin("riscv.CPU", 1)
	for _, x := range c.X {
		w.U64(x)
	}
	w.U64(c.PC)
	w.U64(c.MStatus)
	w.U64(c.MIE)
	w.U64(c.MIP)
	w.U64(c.MTVec)
	w.U64(c.MEPC)
	w.U64(c.MCause)
	w.U64(c.MScratch)
	w.U64(c.HartID)
	w.U64(uint64(c.Cycle))
	w.Bool(c.Halted)
	w.Bool(c.WaitingForInterrupt)
	w.U64(c.stats.Instret)
	w.U64(c.stats.Loads)
	w.U64(c.stats.Stores)
	w.U64(c.stats.Branches)
	w.U64(c.stats.Traps)
	return w.Err()
}

// Restore overwrites the hart's state from r. X[0] staying hardwired to
// zero is the one invariant worth checking; everything else is plain
// data.
func (c *CPU) Restore(r *snapshot.Reader) error {
	if err := r.Begin("riscv.CPU", 1); err != nil {
		return err
	}
	var x [32]uint64
	for i := range x {
		x[i] = r.U64()
	}
	pc := r.U64()
	mstatus := r.U64()
	mie := r.U64()
	mip := r.U64()
	mtvec := r.U64()
	mepc := r.U64()
	mcause := r.U64()
	mscratch := r.U64()
	hartID := r.U64()
	cycle := r.U64()
	halted := r.Bool()
	wfi := r.Bool()
	var stats Stats
	stats.Instret = r.U64()
	stats.Loads = r.U64()
	stats.Stores = r.U64()
	stats.Branches = r.U64()
	stats.Traps = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if x[0] != 0 {
		return fmt.Errorf("riscv: restored x0 = %#x, must be zero", x[0])
	}
	c.X = x
	c.PC = pc
	c.MStatus = mstatus
	c.MIE = mie
	c.MIP = mip
	c.MTVec = mtvec
	c.MEPC = mepc
	c.MCause = mcause
	c.MScratch = mscratch
	c.HartID = hartID
	c.Cycle = clock.Cycles(cycle)
	c.Halted = halted
	c.WaitingForInterrupt = wfi
	c.stats = stats
	// The predecode cache is derived state: the checkpoint carries memory
	// contents that may disagree with whatever was cached, so start cold.
	c.InvalidateDecodeAll()
	return nil
}
