package switchmodel

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/snapshot"
)

// maxPacketFlits bounds one packet in a checkpoint (a jumbo frame is ~9KB
// = ~1200 flits; the cap just stops corrupted streams from allocating).
const maxPacketFlits = 1 << 20

func savePacket(w *snapshot.Writer, pkt *Packet) {
	w.Uvarint(uint64(len(pkt.Flits)))
	for _, f := range pkt.Flits {
		w.U64(f)
	}
	w.Uvarint(uint64(pkt.InPort))
	w.U64(uint64(pkt.Release))
	w.U64(pkt.seq)
}

func (s *Switch) restorePacket(r *snapshot.Reader) (*Packet, error) {
	pkt := &Packet{}
	nf := r.Count(maxPacketFlits)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nf == 0 {
		return nil, fmt.Errorf("switchmodel %s: restored packet has no flits", s.cfg.Name)
	}
	pkt.Flits = make([]uint64, nf)
	for i := range pkt.Flits {
		pkt.Flits[i] = r.U64()
	}
	pkt.InPort = int(r.Uvarint())
	pkt.Release = clock.Cycles(r.U64())
	pkt.seq = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if pkt.InPort < 0 || pkt.InPort >= s.cfg.Ports {
		return nil, fmt.Errorf("switchmodel %s: restored packet ingress port %d out of range", s.cfg.Name, pkt.InPort)
	}
	return pkt, nil
}

// Save serialises the switch's dynamic state: cycle, packet sequence
// counter, per-ingress partial assemblies, the pending priority queue, and
// per-egress queues including the in-flight transmission. The router
// table, probe, stall hook and metrics are wiring re-installed by Deploy.
//
// The pending heap is written in raw array order and restored verbatim:
// heap order is a deterministic function of the push/pop history, so the
// array is identical across identical runs, and restoring it byte-for-byte
// preserves both the heap invariant and save → restore → save stability.
func (s *Switch) Save(w *snapshot.Writer) error {
	w.Begin("switchmodel.Switch", 1)
	w.Uvarint(uint64(s.cfg.Ports))
	w.U64(uint64(s.cycle))
	w.U64(s.seq)
	for p := range s.in {
		ip := &s.in[p]
		var flits []uint64
		if ip.cur != nil {
			flits = ip.cur.Flits
		}
		w.Uvarint(uint64(len(flits)))
		for _, f := range flits {
			w.U64(f)
		}
	}
	w.Uvarint(uint64(s.queue.len()))
	for _, pkt := range s.queue.a {
		savePacket(w, pkt)
	}
	for p := range s.out {
		o := &s.out[p]
		w.Uvarint(uint64(o.queue.len()))
		for i := 0; i < o.queue.len(); i++ {
			savePacket(w, o.queue.at(i))
		}
		if o.tx != nil {
			w.Bool(true)
			savePacket(w, o.tx)
			w.Uvarint(uint64(o.txFlit))
		} else {
			w.Bool(false)
		}
	}
	w.U64(s.stats.PacketsIn)
	w.U64(s.stats.PacketsOut)
	w.U64(s.stats.FlitsIn)
	w.U64(s.stats.FlitsOut)
	w.U64(s.stats.DropsBufFull)
	w.U64(s.stats.DropsStale)
	w.U64(s.stats.DropsUnroutable)
	w.U64(s.stats.BytesSwitched)
	w.U64(s.stats.StallCycles)
	return w.Err()
}

// Restore overwrites the switch's dynamic state from r, recomputing each
// egress port's byte occupancy from the restored queues and republishing
// the concurrent-reader snapshots.
func (s *Switch) Restore(r *snapshot.Reader) error {
	if err := r.Begin("switchmodel.Switch", 1); err != nil {
		return err
	}
	ports := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if ports != uint64(s.cfg.Ports) {
		return fmt.Errorf("switchmodel %s: checkpoint has %d ports, switch has %d", s.cfg.Name, ports, s.cfg.Ports)
	}
	cycle := clock.Cycles(r.U64())
	seq := r.U64()
	in := make([]inPort, s.cfg.Ports)
	for p := range in {
		nf := r.Count(maxPacketFlits)
		if err := r.Err(); err != nil {
			return err
		}
		if nf > 0 {
			cur := &Packet{Flits: make([]uint64, nf)}
			for i := range cur.Flits {
				cur.Flits[i] = r.U64()
			}
			in[p].cur = cur
		}
	}
	npending := r.Count(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	queue := pktHeap{a: make([]*Packet, 0, npending)}
	for i := 0; i < npending; i++ {
		pkt, err := s.restorePacket(r)
		if err != nil {
			return err
		}
		queue.a = append(queue.a, pkt)
	}
	out := make([]outPort, s.cfg.Ports)
	for p := range out {
		o := &out[p]
		nq := r.Count(1 << 24)
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < nq; i++ {
			pkt, err := s.restorePacket(r)
			if err != nil {
				return err
			}
			// Broadcast sharing is not reconstructed: each restored queue
			// entry is its own single-reference packet, which releases and
			// recycles identically.
			pkt.refs = 1
			o.queue.push(pkt)
			o.queuedBytes += len(pkt.Flits) * ethernet.FlitSize
		}
		if r.Bool() {
			pkt, err := s.restorePacket(r)
			if err != nil {
				return err
			}
			txFlit := int(r.Uvarint())
			if err := r.Err(); err != nil {
				return err
			}
			if txFlit < 0 || txFlit >= len(pkt.Flits) {
				return fmt.Errorf("switchmodel %s: restored tx cursor %d out of range", s.cfg.Name, txFlit)
			}
			pkt.refs = 1
			o.tx = pkt
			o.txFlit = txFlit
			// An in-flight packet still occupies its full footprint in the
			// output buffer; bytes are released only at last-flit egress.
			o.queuedBytes += len(pkt.Flits) * ethernet.FlitSize
		}
		if o.queuedBytes > s.cfg.OutputBufferBytes {
			return fmt.Errorf("switchmodel %s: restored port %d holds %d bytes, buffer is %d",
				s.cfg.Name, p, o.queuedBytes, s.cfg.OutputBufferBytes)
		}
	}
	var stats Stats
	stats.PacketsIn = r.U64()
	stats.PacketsOut = r.U64()
	stats.FlitsIn = r.U64()
	stats.FlitsOut = r.U64()
	stats.DropsBufFull = r.U64()
	stats.DropsStale = r.U64()
	stats.DropsUnroutable = r.U64()
	stats.BytesSwitched = r.U64()
	stats.StallCycles = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	s.cycle = cycle
	s.seq = seq
	s.in = in
	s.queue = queue
	s.out = out
	s.stats = stats
	// Republish for concurrent readers, exactly as TickBatch does.
	s.publishStats()
	return nil
}
