// Package nic implements the target server Network Interface Controller of
// Section III-A2 and Figure 3.
//
// The NIC is integrated on-die and connects directly to the SoC's shared
// L2 through DMA (the paper's TileLink attachment). It has three main
// blocks:
//
//   - the controller, which exposes four queues to the CPU as memory-mapped
//     IO registers (send request, receive request, send completion, receive
//     completion) plus an interrupt line asserted while a completion queue
//     is occupied;
//   - the send path: reader (issues memory reads for packet data) →
//     reservation buffer (holds and re-orders read responses) → aligner
//     (handles packets whose start address is not 8-byte aligned) → rate
//     limiter (a token-bucket: a counter incremented by k every p cycles
//     and decremented per flit sent, giving k/p of the unlimited rate,
//     settable at runtime without resynthesis, and backpressuring the NIC
//     internally so it behaves as if it truly ran at the set bandwidth);
//   - the receive path: packet buffer (drops at full-packet granularity
//     when space is insufficient, since the Ethernet network cannot be
//     back-pressured) → writer (DMAs packet data to the buffer addresses
//     provided by the CPU).
//
// The NIC's top-level interface is FAME-1 decoupled: each target cycle it
// consumes one input token and produces one output token.
package nic

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

// MMIO register offsets within the NIC's MMIO window.
const (
	RegSendReq  = 0x00 // W: bits 47:0 packet address, 63:48 length in bytes
	RegRecvReq  = 0x08 // W: receive buffer address
	RegCounts   = 0x10 // R: queue occupancy, see CountsOf
	RegSendComp = 0x18 // R: pop one send completion (returns 1)
	RegRecvComp = 0x20 // R: pop one receive completion (returns length)
	RegIntrMask = 0x28 // W: bit 0 send completions, bit 1 receive completions
	RegMACAddr  = 0x30 // R: the NIC's MAC address
	RegRateLim  = 0x38 // W: bits 31:0 = k, 63:32 = p (token bucket)
)

// Interrupt mask bits.
const (
	IntrSend = 1 << 0
	IntrRecv = 1 << 1
)

// Queue capacities, mirroring small on-die hardware queues.
const (
	sendReqQueueCap = 16
	recvReqQueueCap = 16
	compQueueCap    = 16
)

// Memory is the NIC's DMA port into the SoC memory system. Transfers are
// line-granularity for timing but byte-granularity functionally; the
// returned cycle is when the transfer completes.
type Memory interface {
	// ReadDMA reads len(buf) bytes at addr, issued at cycle now.
	ReadDMA(now clock.Cycles, addr uint64, buf []byte) clock.Cycles
	// WriteDMA writes data to addr, issued at cycle now.
	WriteDMA(now clock.Cycles, addr uint64, data []byte) clock.Cycles
}

// Config parameterises the NIC.
type Config struct {
	// MAC is the NIC's address (assigned by the simulation manager).
	MAC ethernet.MAC
	// PacketBufBytes is the receive packet buffer capacity.
	PacketBufBytes int
	// ReservationBufBytes is the send-side reservation buffer capacity.
	ReservationBufBytes int
}

// DefaultConfig returns the standard target NIC configuration.
func DefaultConfig(mac ethernet.MAC) Config {
	return Config{MAC: mac, PacketBufBytes: 64 << 10, ReservationBufBytes: 16 << 10}
}

// Stats counts NIC activity.
type Stats struct {
	PacketsSent  uint64
	PacketsRecv  uint64
	FlitsSent    uint64
	FlitsRecv    uint64
	RecvDropped  uint64 // packets dropped because the packet buffer was full
	RecvNoBuffer uint64 // packets dropped because software provided no buffer
	SendRejected uint64 // MMIO send requests rejected (queue full)
}

type sendReq struct {
	addr uint64
	len  int
}

// inflightSend is a packet moving through reader -> reservation buffer ->
// aligner.
type inflightSend struct {
	data    []byte       // aligned packet bytes (aligner already applied)
	readyAt clock.Cycles // when the DMA reads have all completed
	flit    int          // next flit index to transmit
}

type recvPacket struct {
	data []byte
}

// NIC models the target network interface controller.
type NIC struct {
	cfg Config
	mem Memory

	// controller state
	sendReqs  []sendReq
	recvBufs  []uint64
	sendComps []uint64 // completion tokens (always 1)
	recvComps []uint64 // completion lengths
	intrMask  uint64

	// send path: the reader runs ahead of the transmitter, staging up to
	// two packets in the reservation buffer so that DMA for packet k+1
	// overlaps transmission of packet k.
	pipeline    []*inflightSend
	rateK       uint32
	rateP       uint32
	rateCounter int64
	rateBurst   int64

	// receive path
	rxAssembly  []uint64 // flits of the packet currently arriving
	pktBuf      []recvPacket
	pktBufBytes int
	// rxBusyUntil models the writer DMA occupancy.
	rxBusyUntil clock.Cycles

	cycle clock.Cycles
	stats Stats
}

// New builds a NIC over the given DMA port.
func New(cfg Config, mem Memory) *NIC {
	if cfg.PacketBufBytes == 0 {
		cfg.PacketBufBytes = 64 << 10
	}
	if cfg.ReservationBufBytes == 0 {
		cfg.ReservationBufBytes = 16 << 10
	}
	return &NIC{cfg: cfg, mem: mem, rateK: 1, rateP: 1, rateBurst: 16}
}

// Stats returns a snapshot of the NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// MAC returns the NIC's address.
func (n *NIC) MAC() ethernet.MAC { return n.cfg.MAC }

// SetRateLimit sets the token bucket to k tokens every p cycles (effective
// bandwidth k/p of the unlimited rate). Panics on p == 0.
func (n *NIC) SetRateLimit(k, p uint32) {
	if p == 0 {
		panic("nic: rate limiter period must be positive")
	}
	n.rateK, n.rateP = k, p
	// A shallow bucket: enough to ride out refill granularity without
	// letting an idle NIC accumulate a large line-rate burst.
	burst := int64(k)
	if burst < 8 {
		burst = 8
	}
	n.rateBurst = burst
	if n.rateCounter > n.rateBurst {
		n.rateCounter = n.rateBurst
	}
}

// SetRateLimitGbps configures the limiter for a target bandwidth on a link
// of the given raw bandwidth (both in Gbit/s), reducing k/p to lowest
// terms. This is how the Figure 6 experiment models standard Ethernet
// rates on the 200 Gbit/s link.
func (n *NIC) SetRateLimitGbps(target, link float64) {
	if target >= link {
		n.SetRateLimit(1, 1)
		return
	}
	// Find a small rational approximation k/p = target/link.
	const maxDen = 400
	bestK, bestP := uint32(1), uint32(maxDen)
	bestErr := 1e18
	want := target / link
	for p := 1; p <= maxDen; p++ {
		k := int(want*float64(p) + 0.5)
		if k < 1 {
			continue
		}
		err := abs(float64(k)/float64(p) - want)
		if err < bestErr {
			bestErr = err
			bestK, bestP = uint32(k), uint32(p)
			if err == 0 {
				break
			}
		}
	}
	n.SetRateLimit(bestK, bestP)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// --- MMIO (controller) ---

// CountsOf unpacks the RegCounts value.
func CountsOf(v uint64) (sendReqFree, recvReqFree, sendComp, recvComp int) {
	return int(v & 0xff), int(v >> 8 & 0xff), int(v >> 16 & 0xff), int(v >> 24 & 0xff)
}

// MMIOLoad services a CPU read of a NIC register at the given offset.
func (n *NIC) MMIOLoad(offset uint64) uint64 {
	switch offset {
	case RegCounts:
		return uint64(sendReqQueueCap-len(n.sendReqs)) |
			uint64(recvReqQueueCap-len(n.recvBufs))<<8 |
			uint64(len(n.sendComps))<<16 |
			uint64(len(n.recvComps))<<24
	case RegSendComp:
		if len(n.sendComps) == 0 {
			return 0
		}
		v := n.sendComps[0]
		n.sendComps = n.sendComps[1:]
		return v
	case RegRecvComp:
		if len(n.recvComps) == 0 {
			return 0
		}
		v := n.recvComps[0]
		n.recvComps = n.recvComps[1:]
		return v
	case RegMACAddr:
		return uint64(n.cfg.MAC)
	default:
		return 0
	}
}

// MMIOStore services a CPU write of a NIC register at the given offset.
func (n *NIC) MMIOStore(offset uint64, v uint64) {
	switch offset {
	case RegSendReq:
		if len(n.sendReqs) >= sendReqQueueCap {
			n.stats.SendRejected++
			return
		}
		n.sendReqs = append(n.sendReqs, sendReq{addr: v & 0xffff_ffff_ffff, len: int(v >> 48)})
	case RegRecvReq:
		if len(n.recvBufs) < recvReqQueueCap {
			n.recvBufs = append(n.recvBufs, v)
		}
	case RegIntrMask:
		n.intrMask = v
	case RegRateLim:
		k := uint32(v)
		p := uint32(v >> 32)
		if p == 0 {
			p = 1
		}
		if k == 0 {
			k = 1
		}
		n.SetRateLimit(k, p)
	}
}

// IntrPending reports whether the NIC interrupt line is asserted: a
// completion queue is occupied and its interrupt is unmasked.
func (n *NIC) IntrPending() bool {
	return (n.intrMask&IntrSend != 0 && len(n.sendComps) > 0) ||
		(n.intrMask&IntrRecv != 0 && len(n.recvComps) > 0)
}

// --- send path ---

// readerDepth is how many packets the reader stages ahead in the
// reservation buffer.
const readerDepth = 2

// startSend moves the head send request through the reader: issue DMA
// reads for the (possibly unaligned) packet data and stage it in the
// reservation buffer. The aligner drops the extra bytes read before and
// after the packet so the first byte delivered is the first packet byte.
func (n *NIC) startSend(now clock.Cycles) {
	req := n.sendReqs[0]
	n.sendReqs = n.sendReqs[1:]

	// The memory interface is 64 bits wide: the reader can only read at
	// 8-byte alignment, so it reads the covering aligned span and the
	// aligner shifts out the slack.
	alignedStart := req.addr &^ 7
	alignedEnd := (req.addr + uint64(req.len) + 7) &^ 7
	span := make([]byte, alignedEnd-alignedStart)
	done := n.mem.ReadDMA(now, alignedStart, span)

	n.pipeline = append(n.pipeline, &inflightSend{
		data:    span[req.addr-alignedStart : req.addr-alignedStart+uint64(req.len)],
		readyAt: done,
	})
}

// sendFlit produces the next output token, applying the rate limiter.
func (n *NIC) sendFlit(now clock.Cycles) token.Token {
	// Token bucket refill.
	if n.rateP == 1 {
		n.rateCounter += int64(n.rateK)
	} else if now%clock.Cycles(n.rateP) == 0 {
		n.rateCounter += int64(n.rateK)
	}
	if n.rateCounter > n.rateBurst {
		n.rateCounter = n.rateBurst
	}

	// Reader prefetch: keep the reservation buffer pipeline primed.
	for len(n.pipeline) < readerDepth && len(n.sendReqs) > 0 {
		n.startSend(now)
	}
	if len(n.pipeline) == 0 {
		return token.Empty
	}
	fl := n.pipeline[0]
	if now < fl.readyAt || n.rateCounter <= 0 {
		return token.Empty // data not yet in the reservation buffer, or throttled
	}

	off := fl.flit * ethernet.FlitSize
	var word [8]byte
	copy(word[:], fl.data[off:])
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(word[i])
	}
	nFlits := (len(fl.data) + ethernet.FlitSize - 1) / ethernet.FlitSize
	last := fl.flit == nFlits-1
	fl.flit++
	n.rateCounter--
	n.stats.FlitsSent++
	if last {
		n.pipeline = n.pipeline[1:]
		n.stats.PacketsSent++
		if len(n.sendComps) < compQueueCap {
			n.sendComps = append(n.sendComps, 1)
		}
	}
	return token.Token{Data: v, Valid: true, Last: last}
}

// --- receive path ---

func (n *NIC) recvFlit(now clock.Cycles, tok token.Token) {
	if !tok.Valid {
		return
	}
	n.stats.FlitsRecv++
	n.rxAssembly = append(n.rxAssembly, tok.Data)
	if !tok.Last {
		return
	}
	// Full packet received: buffer it or drop it whole.
	data := ethernet.FromFlits(n.rxAssembly)
	n.rxAssembly = n.rxAssembly[:0]
	if n.pktBufBytes+len(data) > n.cfg.PacketBufBytes {
		n.stats.RecvDropped++
		return
	}
	n.pktBuf = append(n.pktBuf, recvPacket{data: data})
	n.pktBufBytes += len(data)
}

// drainRecv moves buffered packets to software-provided receive buffers
// through the writer.
func (n *NIC) drainRecv(now clock.Cycles) {
	for len(n.pktBuf) > 0 && len(n.recvBufs) > 0 && len(n.recvComps) < compQueueCap && now >= n.rxBusyUntil {
		pkt := n.pktBuf[0]
		n.pktBuf = n.pktBuf[1:]
		n.pktBufBytes -= len(pkt.data)
		buf := n.recvBufs[0]
		n.recvBufs = n.recvBufs[1:]
		n.rxBusyUntil = n.mem.WriteDMA(now, buf, pkt.data)
		n.recvComps = append(n.recvComps, uint64(len(pkt.data)))
		n.stats.PacketsRecv++
	}
}

// Tick advances the NIC by one target cycle: it consumes the input token
// and produces the output token, per the FAME-1 decoupled contract.
func (n *NIC) Tick(now clock.Cycles, in token.Token) token.Token {
	n.cycle = now
	n.recvFlit(now, in)
	n.drainRecv(now)
	return n.sendFlit(now)
}

// Quiescent reports whether, fed only empty input tokens, every future
// Tick would be a pure no-op apart from the cycle register and the rate
// limiter's token-bucket refill: nothing staged to send, nothing buffered
// to deliver, no packet mid-assembly. Under that condition a window of
// idle cycles can be replayed arithmetically by SkipIdle.
func (n *NIC) Quiescent() bool {
	return len(n.pipeline) == 0 && len(n.sendReqs) == 0 &&
		len(n.pktBuf) == 0 && len(n.rxAssembly) == 0
}

// SkipIdle advances a quiescent NIC across cycles [start, start+count) in
// one step, bit-identical to count calls of Tick(start+i, token.Empty):
// the cycle register lands on the last skipped cycle and the token bucket
// receives exactly the refills those cycles would have granted. The caller
// must have checked Quiescent; every produced output token is token.Empty.
func (n *NIC) SkipIdle(start clock.Cycles, count int) {
	if count <= 0 {
		return
	}
	n.cycle = start + clock.Cycles(count) - 1
	// Refills granted in [start, start+count): every cycle when p == 1,
	// otherwise one per multiple of p in the window. Because refills only
	// add and sends are absent, clamping once at the end is identical to
	// clamping every cycle.
	var refills int64
	if n.rateP == 1 {
		refills = int64(count)
	} else {
		p := clock.Cycles(n.rateP)
		last := start + clock.Cycles(count) - 1
		refills = int64(last / p)
		if start > 0 {
			refills -= int64((start - 1) / p)
		} else {
			refills++ // cycle 0 is a multiple of p
		}
	}
	n.rateCounter += refills * int64(n.rateK)
	if n.rateCounter > n.rateBurst {
		n.rateCounter = n.rateBurst
	}
}

// String summarises the NIC for diagnostics.
func (n *NIC) String() string {
	return fmt.Sprintf("NIC(%v: sent=%d recv=%d drop=%d)", n.cfg.MAC, n.stats.PacketsSent, n.stats.PacketsRecv, n.stats.RecvDropped)
}
