package fame

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/token"
)

// TestLinkLatency verifies the paper's fundamental token-transport
// invariant: "if a particular network endpoint issues a token at cycle M,
// the token arrives at the other side of the link for consumption at cycle
// M+N" for a link of latency N.
func TestLinkLatency(t *testing.T) {
	for _, latency := range []clock.Cycles{1, 4, 100, 6400} {
		t.Run(fmt.Sprintf("latency=%d", latency), func(t *testing.T) {
			r := NewRunner()
			src := NewSource("src")
			sink := NewSink("sink")
			r.Add(src)
			r.Add(sink)
			if err := r.Connect(src, 0, sink, 0, latency); err != nil {
				t.Fatal(err)
			}
			const m = 3 // emit at cycle 3
			src.EmitAt(m, token.Token{Data: 0xabcd, Valid: true, Last: true})
			if err := r.Run(latency * 8); err != nil {
				t.Fatal(err)
			}
			if len(sink.Received) != 1 {
				t.Fatalf("sink received %d tokens, want 1", len(sink.Received))
			}
			got := sink.Received[0]
			if got.Cycle != m+int64(latency) {
				t.Errorf("token arrived at cycle %d, want M+N = %d", got.Cycle, m+int64(latency))
			}
			if got.Tok.Data != 0xabcd || !got.Tok.Last {
				t.Errorf("token corrupted in flight: %v", got.Tok)
			}
		})
	}
}

// TestMixedLatencies checks that links with different latencies coexist:
// the runner picks the GCD as its step and each link still delivers at
// exactly M+N.
func TestMixedLatencies(t *testing.T) {
	r := NewRunner()
	src1 := NewSource("src1")
	src2 := NewSource("src2")
	sink1 := NewSink("sink1")
	sink2 := NewSink("sink2")
	for _, e := range []Endpoint{src1, src2, sink1, sink2} {
		r.Add(e)
	}
	if err := r.Connect(src1, 0, sink1, 0, 6); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(src2, 0, sink2, 0, 10); err != nil {
		t.Fatal(err)
	}
	src1.EmitAt(5, token.Token{Data: 1, Valid: true})
	src2.EmitAt(5, token.Token{Data: 2, Valid: true})
	if err := r.Run(40); err != nil {
		t.Fatal(err)
	}
	if r.Step() != 2 {
		t.Errorf("Step = %d, want gcd(6,10) = 2", r.Step())
	}
	if len(sink1.Received) != 1 || sink1.Received[0].Cycle != 11 {
		t.Errorf("sink1: %+v, want arrival at cycle 11", sink1.Received)
	}
	if len(sink2.Received) != 1 || sink2.Received[0].Cycle != 15 {
		t.Errorf("sink2: %+v, want arrival at cycle 15", sink2.Received)
	}
}

func TestRunValidation(t *testing.T) {
	r := NewRunner()
	if err := r.Run(8); err == nil {
		t.Error("Run on empty topology should fail")
	}

	r2 := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r2.Add(src)
	r2.Add(sink)
	if err := r2.Connect(src, 0, sink, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(12); err == nil {
		t.Error("Run with cycles not a multiple of step should fail")
	}
	if err := r2.Run(-8); err == nil {
		t.Error("Run with negative cycles should fail")
	}
	if err := r2.Run(16); err != nil {
		t.Errorf("valid Run failed: %v", err)
	}
	if r2.Cycle() != 16 {
		t.Errorf("Cycle = %d, want 16", r2.Cycle())
	}
}

func TestConnectValidation(t *testing.T) {
	r := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r.Add(src)
	if err := r.Connect(src, 0, sink, 0, 4); err == nil {
		t.Error("Connect to unregistered endpoint should fail")
	}
	r.Add(sink)
	if err := r.Connect(src, 5, sink, 0, 4); err == nil {
		t.Error("Connect with out-of-range port should fail")
	}
	if err := r.Connect(src, 0, sink, 0, 0); err == nil {
		t.Error("Connect with zero latency should fail")
	}
	if err := r.Connect(src, 0, sink, 0, 4); err != nil {
		t.Fatal(err)
	}
	// double connection of the same port must be rejected at build time
	src2 := NewSource("src2")
	r.Add(src2)
	if err := r.Connect(src2, 0, sink, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(4); err == nil {
		t.Error("build with doubly-connected input port should fail")
	}
}

// echoDelay echoes every token it receives back out after recording it,
// a minimal stateful bidirectional endpoint for ring tests.
type echo struct {
	name  string
	seen  int
	cycle int64
}

func (e *echo) Name() string  { return e.name }
func (e *echo) NumPorts() int { return 1 }
func (e *echo) TickBatch(n int, in, out []*token.Batch) {
	for _, s := range in[0].Slots {
		out[0].Put(int(s.Offset), s.Tok)
		e.seen++
	}
	e.cycle += int64(n)
}

// TestSequentialParallelEquivalence is the determinism guarantee from
// DESIGN.md: the parallel worker-pool runner must produce bit-identical
// token streams to the sequential one.
func TestSequentialParallelEquivalence(t *testing.T) {
	build := func() (*Runner, *Sink, *Sink) {
		r := NewRunner()
		srcA := NewSource("srcA")
		srcB := NewSource("srcB")
		wire := NewWire("wire")
		sinkA := NewSink("sinkA")
		sinkB := NewSink("sinkB")
		for _, e := range []Endpoint{srcA, srcB, wire, sinkA, sinkB} {
			r.Add(e)
		}
		// srcA -> wire(0) ; wire(1) -> sinkB and srcB -> sinkA direct
		if err := r.Connect(srcA, 0, wire, 0, 8); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(wire, 1, sinkB, 0, 16); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(srcB, 0, sinkA, 0, 8); err != nil {
			t.Fatal(err)
		}
		srcA.EmitPacketAt(2, []uint64{10, 11, 12})
		srcA.EmitPacketAt(40, []uint64{13})
		srcB.EmitPacketAt(7, []uint64{20, 21})
		return r, sinkA, sinkB
	}

	rSeq, sa1, sb1 := build()
	if err := rSeq.Run(128); err != nil {
		t.Fatal(err)
	}
	rPar, sa2, sb2 := build()
	if err := rPar.RunParallel(128); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa1.Received, sa2.Received) {
		t.Errorf("sinkA streams differ:\nseq: %+v\npar: %+v", sa1.Received, sa2.Received)
	}
	if !reflect.DeepEqual(sb1.Received, sb2.Received) {
		t.Errorf("sinkB streams differ:\nseq: %+v\npar: %+v", sb1.Received, sb2.Received)
	}
	if len(sb1.Received) != 4 {
		t.Errorf("sinkB received %d tokens, want 4", len(sb1.Received))
	}
}

// TestMixedRunModes interleaves sequential and parallel execution on the
// same runner; target state must carry over seamlessly.
func TestMixedRunModes(t *testing.T) {
	r := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r.Add(src)
	r.Add(sink)
	if err := r.Connect(src, 0, sink, 0, 8); err != nil {
		t.Fatal(err)
	}
	src.EmitAt(4, token.Token{Data: 1, Valid: true})
	src.EmitAt(20, token.Token{Data: 2, Valid: true})
	if err := r.Run(16); err != nil {
		t.Fatal(err)
	}
	if err := r.RunParallel(16); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(16); err != nil {
		t.Fatal(err)
	}
	want := []Arrival{
		{Cycle: 12, Tok: token.Token{Data: 1, Valid: true}},
		{Cycle: 28, Tok: token.Token{Data: 2, Valid: true}},
	}
	if !reflect.DeepEqual(sink.Received, want) {
		t.Errorf("Received = %+v, want %+v", sink.Received, want)
	}
}

// TestRoundTripThroughEcho verifies bidirectional links: a token sent to an
// echo endpoint comes back after exactly 2*latency cycles.
func TestRoundTripThroughEcho(t *testing.T) {
	r := NewRunner()
	// driver is a combined source+sink on one bidirectional port; build it
	// from a Wire trick: use Source on port, Sink gets echo output.
	// Simpler: connect source->echo one way is not possible since links are
	// bidirectional; so attach a two-port driver.
	drv := &loopDriver{sendAt: 5}
	e := &echo{name: "echo"}
	r.Add(drv)
	r.Add(e)
	if err := r.Connect(drv, 0, e, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	if drv.gotCycle != 5+2*10 {
		t.Errorf("round trip arrived at cycle %d, want %d", drv.gotCycle, 25)
	}
	if e.seen != 1 {
		t.Errorf("echo saw %d tokens, want 1", e.seen)
	}
}

type loopDriver struct {
	sendAt   int64
	cycle    int64
	gotCycle int64
}

func (d *loopDriver) Name() string  { return "loopDriver" }
func (d *loopDriver) NumPorts() int { return 1 }
func (d *loopDriver) TickBatch(n int, in, out []*token.Batch) {
	for _, s := range in[0].Slots {
		d.gotCycle = d.cycle + int64(s.Offset)
		_ = s
	}
	if d.sendAt >= d.cycle && d.sendAt < d.cycle+int64(n) {
		out[0].Put(int(d.sendAt-d.cycle), token.Token{Data: 99, Valid: true, Last: true})
	}
	d.cycle += int64(n)
}

// TestMultiplexEquivalence: a FAME-5 multiplexed pair of sources must be
// functionally indistinguishable from the two sources running standalone.
func TestMultiplexEquivalence(t *testing.T) {
	run := func(multiplexed bool) ([]Arrival, []Arrival) {
		r := NewRunner()
		s1 := NewSource("s1")
		s2 := NewSource("s2")
		s1.EmitPacketAt(3, []uint64{1, 2})
		s2.EmitPacketAt(9, []uint64{7})
		k1 := NewSink("k1")
		k2 := NewSink("k2")
		r.Add(k1)
		r.Add(k2)
		if multiplexed {
			m := NewMultiplex("super", s1, s2)
			r.Add(m)
			if err := r.Connect(m, m.PortOf(0, 0), k1, 0, 4); err != nil {
				t.Fatal(err)
			}
			if err := r.Connect(m, m.PortOf(1, 0), k2, 0, 4); err != nil {
				t.Fatal(err)
			}
		} else {
			r.Add(s1)
			r.Add(s2)
			if err := r.Connect(s1, 0, k1, 0, 4); err != nil {
				t.Fatal(err)
			}
			if err := r.Connect(s2, 0, k2, 0, 4); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Run(32); err != nil {
			t.Fatal(err)
		}
		return k1.Received, k2.Received
	}
	a1, a2 := run(false)
	b1, b2 := run(true)
	if !reflect.DeepEqual(a1, b1) || !reflect.DeepEqual(a2, b2) {
		t.Errorf("multiplexed run differs from standalone:\n%v vs %v\n%v vs %v", a1, b1, a2, b2)
	}
}

func TestMultiplexPortOfPanics(t *testing.T) {
	m := NewMultiplex("m", NewSource("s"))
	for _, fn := range []func(){
		func() { m.PortOf(1, 0) },
		func() { m.PortOf(0, 1) },
		func() { m.PortOf(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeasureReportsRate(t *testing.T) {
	r := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r.Add(src)
	r.Add(sink)
	if err := r.Connect(src, 0, sink, 0, 64); err != nil {
		t.Fatal(err)
	}
	rate, err := r.Measure(64*100, clock.DefaultTargetClock, false)
	if err != nil {
		t.Fatal(err)
	}
	if rate.TargetCycles != 6400 {
		t.Errorf("TargetCycles = %d", rate.TargetCycles)
	}
	if rate.EffectiveHz() <= 0 {
		t.Errorf("EffectiveHz = %v, want > 0", rate.EffectiveHz())
	}
}

// dropOddInjector drops every token at an odd absolute cycle on input and
// XORs a mask into every output token: a pure function of (endpoint, port,
// cycle), as the Injector contract requires.
type dropOddInjector struct{ mask uint64 }

func (d *dropOddInjector) FilterInput(ep string, port int, start clock.Cycles, b *token.Batch) {
	b.Filter(func(offset int, tok token.Token) bool {
		return (int64(start)+int64(offset))%2 == 0
	})
}

func (d *dropOddInjector) FilterOutput(ep string, port int, start clock.Cycles, b *token.Batch) {
	b.Mutate(func(offset int, tok token.Token) token.Token {
		tok.Data ^= d.mask
		return tok
	})
}

// TestInjectorEquivalence verifies that an installed injector (a) actually
// perturbs the token stream and (b) perturbs it identically under the
// sequential and parallel schedulers — the determinism contract fault
// injection relies on.
func TestInjectorEquivalence(t *testing.T) {
	build := func(inject bool) (*Runner, *Sink) {
		src := NewSource("src")
		for c := int64(0); c < 64; c++ {
			src.EmitAt(c, token.Token{Data: uint64(c) + 100, Valid: true, Last: c%4 == 3})
		}
		sink := NewSink("sink")
		r := NewRunner()
		r.Add(src)
		r.Add(sink)
		if err := r.Connect(src, 0, sink, 0, 8); err != nil {
			t.Fatal(err)
		}
		if inject {
			r.SetInjector(&dropOddInjector{mask: 0xff00})
		}
		return r, sink
	}

	r0, clean := build(false)
	if err := r0.Run(128); err != nil {
		t.Fatal(err)
	}
	r1, seq := build(true)
	if err := r1.Run(128); err != nil {
		t.Fatal(err)
	}
	r2, par := build(true)
	if err := r2.RunParallel(128); err != nil {
		t.Fatal(err)
	}

	if reflect.DeepEqual(clean.Received, seq.Received) {
		t.Fatal("injector had no observable effect")
	}
	if len(seq.Received) >= len(clean.Received) {
		t.Errorf("drops did not reduce delivery: %d -> %d", len(clean.Received), len(seq.Received))
	}
	if !reflect.DeepEqual(seq.Received, par.Received) {
		t.Errorf("sequential and parallel injected streams differ:\nseq: %v\npar: %v", seq.Received, par.Received)
	}
	for _, a := range seq.Received {
		if a.Cycle%2 != 0 {
			t.Fatalf("token delivered at odd cycle %d despite drop filter", a.Cycle)
		}
		if a.Tok.Data&0xff00 == 0 {
			t.Fatalf("output mutation missing on token %v", a.Tok)
		}
	}
}
