package hostplatform

import "sort"

// PackUnits assigns partition units to host processes by weight
// (typically server count per unit) using worst-fit decreasing: units in
// descending weight order, each onto the least-loaded process. (This is
// the LPT balancing heuristic, NOT first-fit-decreasing — FFD fills the
// first bin that fits to minimise bin count, which is the wrong objective
// when the bin set is fixed and the goal is keeping loads level.) It is
// the same bin-packing instinct as the FPGA mapping, applied both to the
// elastic reshard path — when a distributed run loses a process and
// cannot replace it, the dead process's units are re-packed onto the
// survivors so the cluster keeps its balance instead of piling everything
// onto one host — and to the in-process parallel scheduler, whose
// partitioner packs merged link groups onto workers through this same
// function (internal/fame/parallel.go), so worker assignment and process
// assignment balance identically.
//
// The assignment is deterministic: units are ordered by descending
// weight (ties by ascending unit index) and each goes to the process
// with the smallest current load (ties by ascending process index).
// procs must be >= 1; the result has exactly procs slots, some possibly
// empty, each sorted ascending.
func PackUnits(weights []int, procs int) [][]int {
	if procs < 1 {
		procs = 1
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := order[a], order[b]
		if weights[ua] != weights[ub] {
			return weights[ua] > weights[ub]
		}
		return ua < ub
	})
	out := make([][]int, procs)
	load := make([]int, procs)
	for _, u := range order {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		out[best] = append(out[best], u)
		load[best] += weights[u]
	}
	for p := range out {
		sort.Ints(out[p])
	}
	return out
}
