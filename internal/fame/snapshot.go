package fame

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// Save checkpoints the runner's own state: the current target cycle and
// every in-flight token batch. The topology itself (endpoints, links,
// latencies) is not serialised — a restore target is expected to have been
// rebuilt from the same configuration, and Restore verifies the structural
// facts it can see (step, per-link latency, channel layout).
//
// Channels are walked in endpoint-then-port order, which is construction
// order and therefore deterministic; the in-flight queue of each channel
// is written oldest-first. At a batch boundary every channel holds exactly
// latency/step batches (the steady-state population the links were seeded
// with), and Save enforces that before writing anything.
func (r *Runner) Save(w *snapshot.Writer) error {
	if err := r.build(); err != nil {
		return err
	}
	if r.poisoned {
		return ErrPoisoned
	}
	w.Begin("fame.Runner", 1)
	w.U64(uint64(r.step))
	w.U64(uint64(r.cycle))
	var nch uint64
	for i := range r.endpoints {
		for _, ch := range r.outCh[i] {
			if ch != nil {
				nch++
			}
		}
	}
	w.Uvarint(nch)
	for i := range r.endpoints {
		for p, ch := range r.outCh[i] {
			if ch == nil {
				continue
			}
			want := int(ch.latency / r.step)
			if ch.queue.len() != want {
				return fmt.Errorf("fame: channel %q port %d holds %d batches, want %d (checkpoint only at batch boundaries)",
					r.endpoints[i].Name(), p, ch.queue.len(), want)
			}
			w.Uvarint(uint64(i))
			w.Uvarint(uint64(p))
			w.U64(uint64(ch.latency))
			for k := 0; k < ch.queue.len(); k++ {
				if err := ch.queue.at(k).Save(w); err != nil {
					return err
				}
			}
		}
	}
	return w.Err()
}

// Restore overwrites the runner's cycle and in-flight batches from r. The
// runner must already hold the same topology the checkpoint was taken
// from; step, channel placement and per-link latency are all verified.
func (r *Runner) Restore(rd *snapshot.Reader) error {
	if err := r.build(); err != nil {
		return err
	}
	if err := rd.Begin("fame.Runner", 1); err != nil {
		return err
	}
	step := clock.Cycles(rd.U64())
	cycle := clock.Cycles(rd.U64())
	if err := rd.Err(); err != nil {
		return err
	}
	if step != r.step {
		return fmt.Errorf("fame: checkpoint step %d, runner step %d", step, r.step)
	}
	var want uint64
	for i := range r.endpoints {
		for _, ch := range r.outCh[i] {
			if ch != nil {
				want++
			}
		}
	}
	nch := rd.Uvarint()
	if err := rd.Err(); err != nil {
		return err
	}
	if nch != want {
		return fmt.Errorf("fame: checkpoint has %d channels, topology has %d", nch, want)
	}
	seen := make(map[*channel]bool, nch)
	for c := uint64(0); c < nch; c++ {
		ep := int(rd.Uvarint())
		port := int(rd.Uvarint())
		lat := clock.Cycles(rd.U64())
		if err := rd.Err(); err != nil {
			return err
		}
		if ep < 0 || ep >= len(r.endpoints) || port < 0 || port >= len(r.outCh[ep]) || r.outCh[ep][port] == nil {
			return fmt.Errorf("fame: checkpoint channel (endpoint %d, port %d) not present in topology", ep, port)
		}
		ch := r.outCh[ep][port]
		if seen[ch] {
			return fmt.Errorf("fame: checkpoint repeats channel (endpoint %d, port %d)", ep, port)
		}
		seen[ch] = true
		if ch.latency != lat {
			return fmt.Errorf("fame: checkpoint latency %d for %q port %d, topology has %d",
				lat, r.endpoints[ep].Name(), port, ch.latency)
		}
		// Replace the current in-flight population (recycling its storage)
		// with the checkpointed batches, oldest first.
		depth := int(lat / r.step)
		for ch.queue.len() > 0 {
			ch.recycle(ch.queue.pop())
		}
		for k := 0; k < depth; k++ {
			b := ch.take(int(r.step))
			if err := b.Restore(rd); err != nil {
				ch.recycle(b)
				return err
			}
			if b.N != int(r.step) {
				return fmt.Errorf("fame: checkpoint batch window %d, step is %d", b.N, r.step)
			}
			ch.push(b)
		}
	}
	r.cycle = cycle
	// A full channel restore rewinds whatever a contained panic tore
	// mid-round; the runner is coherent again.
	r.poisoned = false
	return nil
}

// Save implements snapshot.Snapshotter for Multiplex by delegating to its
// children in pipeline order. Multiplex itself holds no mutable state.
func (m *Multiplex) Save(w *snapshot.Writer) error {
	w.Begin("fame.Multiplex", 1)
	w.Uvarint(uint64(len(m.children)))
	for _, c := range m.children {
		s, ok := c.(snapshot.Snapshotter)
		if !ok {
			return fmt.Errorf("fame: multiplex child %q is not snapshottable", c.Name())
		}
		if err := s.Save(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// Restore implements snapshot.Snapshotter for Multiplex.
func (m *Multiplex) Restore(r *snapshot.Reader) error {
	if err := r.Begin("fame.Multiplex", 1); err != nil {
		return err
	}
	n := r.Count(len(m.children))
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(m.children) {
		return fmt.Errorf("fame: checkpoint has %d multiplex children, topology has %d", n, len(m.children))
	}
	for _, c := range m.children {
		s, ok := c.(snapshot.Snapshotter)
		if !ok {
			return fmt.Errorf("fame: multiplex child %q is not snapshottable", c.Name())
		}
		if err := s.Restore(r); err != nil {
			return err
		}
	}
	return nil
}
