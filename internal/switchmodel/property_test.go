package switchmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/token"
)

// TestDeliveryProperty: for random packet programs on a 4-port switch with
// generous buffers, every unicast packet to a known MAC is delivered
// exactly once, in per-flow FIFO order, with all flits intact and the
// release time respecting arrival + switching latency.
func TestDeliveryProperty(t *testing.T) {
	type pkt struct {
		in      int
		dst     ethernet.MAC
		payload byte
		size    int // payload bytes
	}
	check := func(seed uint64, nRaw uint8) bool {
		rng := seed
		next := func(n uint64) uint64 {
			rng ^= rng >> 12
			rng ^= rng << 25
			rng ^= rng >> 27
			return (rng * 2685821657736338717) % n
		}
		sw := New(Config{Name: "sw", Ports: 4, SwitchingLatency: 10})
		macs := []ethernet.MAC{0xa0, 0xa1, 0xa2, 0xa3}
		for p, m := range macs {
			sw.MACTable().Set(m, p)
		}

		// Build input batches: each port gets a sequence of back-to-back
		// packets with random destinations.
		nPkts := int(nRaw%12) + 1
		var sent []pkt
		perPort := map[int][]pkt{}
		for i := 0; i < nPkts; i++ {
			p := pkt{
				in:      int(next(4)),
				dst:     macs[next(4)],
				payload: byte(next(250)) + 1,
				size:    int(next(200)) + 1,
			}
			if macs[p.in] == p.dst {
				continue // reflections are dropped by design; skip
			}
			sent = append(sent, p)
			perPort[p.in] = append(perPort[p.in], p)
		}

		const n = 4096
		in := make([]*token.Batch, 4)
		out := make([]*token.Batch, 4)
		for p := 0; p < 4; p++ {
			in[p] = token.NewBatch(n)
			off := 0
			for _, k := range perPort[p] {
				fr := &ethernet.Frame{Dst: k.dst, Src: macs[k.in], Type: ethernet.TypeIPv4}
				fr.Payload = make([]byte, k.size)
				for i := range fr.Payload {
					fr.Payload[i] = k.payload
				}
				flits, err := fr.FrameFlits()
				if err != nil {
					return false
				}
				for i, f := range flits {
					in[p].Put(off+i, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
				}
				off += len(flits) + int(next(8))
			}
			out[p] = token.NewBatch(n)
		}
		sw.TickBatch(n, in, out)
		// Drain remaining egress with empty input.
		empty := make([]*token.Batch, 4)
		more := make([]*token.Batch, 4)
		for p := range empty {
			empty[p] = token.NewBatch(n)
			more[p] = token.NewBatch(n)
		}
		sw.TickBatch(n, empty, more)

		// Reassemble per output port and verify against expectations.
		type rx struct {
			src ethernet.MAC
			pay byte
			len int
		}
		got := map[int][]rx{}
		for p := 0; p < 4; p++ {
			var cur []uint64
			collect := func(b *token.Batch) bool {
				for _, s := range b.Slots {
					cur = append(cur, s.Tok.Data)
					if s.Tok.Last {
						fr, err := ethernet.DecodeFlits(cur)
						cur = nil
						if err != nil {
							return false
						}
						pay := byte(0)
						if len(fr.Payload) > 0 {
							pay = fr.Payload[0]
						}
						got[p] = append(got[p], rx{src: fr.Src, pay: pay, len: len(fr.Payload)})
					}
				}
				return true
			}
			if !collect(out[p]) || !collect(more[p]) {
				return false
			}
		}
		// Every sent packet appears exactly once at its destination port,
		// and per (src,dst) pair order is preserved.
		want := map[int][]pkt{}
		for _, k := range sent {
			dstPort := int(k.dst - 0xa0)
			want[dstPort] = append(want[dstPort], k)
		}
		total := 0
		for p := 0; p < 4; p++ {
			total += len(got[p])
			// Check multiset + per-source order.
			perSrc := map[ethernet.MAC][]rx{}
			for _, g := range got[p] {
				perSrc[g.src] = append(perSrc[g.src], g)
			}
			wantPerSrc := map[ethernet.MAC][]pkt{}
			for _, k := range want[p] {
				wantPerSrc[macs[k.in]] = append(wantPerSrc[macs[k.in]], k)
			}
			for src, ws := range wantPerSrc {
				gs := perSrc[src]
				if len(gs) != len(ws) {
					return false
				}
				for i := range ws {
					if gs[i].pay != ws[i].payload || gs[i].len != ws[i].size {
						return false
					}
				}
			}
		}
		if total != len(sent) {
			return false
		}
		if sw.Stats().DropsBufFull != 0 || sw.Stats().DropsStale != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
