package switchmodel

import (
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/obs"
	"repro/internal/token"
)

// TestStatsReadDuringParallelRun reads Stats() and Cycle() continuously
// while a RunParallel is in flight. Before the atomic-publish fix these
// reads raced with the switch's own goroutine mutating the counters (a
// torn, and under -race an illegal, read); now they must observe
// monotonically advancing, internally consistent snapshots. Run under
// -race (scripts/check.sh does) for the full guarantee.
func TestStatsReadDuringParallelRun(t *testing.T) {
	const latency = clock.Cycles(64)
	r := fame.NewRunner()
	src := fame.NewSource("src")
	sink := fame.NewSink("sink")
	sw := New(Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x0200_0000_0002, 1)
	r.Add(src)
	r.Add(sink)
	r.Add(sw)
	if err := r.Connect(src, 0, sw, 0, latency); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(sw, 1, sink, 0, latency); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("race")
	sw.EnableMetrics(reg)

	// Back-to-back 2-flit frames to dst MAC ...:02 for the whole run.
	for c := int64(0); c < 64*256; c += 2 {
		src.EmitPacketAt(c, []uint64{0x0040_0200_0000_0002, uint64(c) + 1})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastCycle clock.Cycles
		var lastFlits uint64
		for {
			st := sw.Stats()
			cy := sw.Cycle()
			if cy < lastCycle {
				t.Errorf("Cycle went backwards: %d after %d", cy, lastCycle)
				return
			}
			if st.FlitsIn < lastFlits {
				t.Errorf("FlitsIn went backwards: %d after %d", st.FlitsIn, lastFlits)
				return
			}
			if st.FlitsOut > st.FlitsIn {
				t.Errorf("torn snapshot: FlitsOut %d > FlitsIn %d", st.FlitsOut, st.FlitsIn)
				return
			}
			lastCycle, lastFlits = cy, st.FlitsIn
			// Concurrent registry snapshots must also be race-free.
			_ = reg.Snapshot()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	if err := r.RunParallel(latency * 256); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	st := sw.Stats()
	if st.FlitsIn == 0 || st.PacketsOut == 0 {
		t.Fatalf("no traffic flowed: %+v", st)
	}
	if got := sw.Cycle(); got != latency*256 {
		t.Errorf("final Cycle = %d, want %d", got, latency*256)
	}
	// The obs mirror must agree exactly with the final Stats snapshot.
	s := reg.Snapshot()
	if got := s.Counters[obs.Label("switch_flits_in_total", "switch", "tor")]; got != st.FlitsIn {
		t.Errorf("obs flits_in = %d, Stats = %d", got, st.FlitsIn)
	}
	if got := s.Counters[obs.Label("switch_packets_out_total", "switch", "tor")]; got != st.PacketsOut {
		t.Errorf("obs packets_out = %d, Stats = %d", got, st.PacketsOut)
	}
}

var _ = token.Empty
