package fame

import (
	"fmt"
	"sync/atomic"

	"repro/internal/token"
)

// spscRing is a bounded single-producer/single-consumer queue of token
// batches built on two monotonically increasing atomic cursors over a
// power-of-two buffer. It is the cross-worker link primitive of the
// parallel scheduler (see parallel.go): exactly one goroutine may call
// push and exactly one may call pop for the ring's lifetime.
//
// The design goal is that a worker running inside its latency slack never
// touches another core's cache line:
//
//   - push writes the slot, then publishes by storing tail; pop reads
//     tail (acquire), the slot, then publishes by storing head. The
//     atomics are the only cross-core traffic.
//   - each side keeps a cached copy of the other side's cursor and
//     reloads it only when the ring looks full (producer) or empty
//     (consumer). With a ring sized to the link's latency depth, that is
//     at most one shared read per depth pushes — one synchronization
//     amortised over the whole slack window, which is the point.
//
// Both operations are non-blocking; waiting policy (spin, Gosched) lives
// in the scheduler, not here.
type spscRing struct {
	buf  []*token.Batch
	mask uint64

	// Shared cursors, each alone on its cache line. tail counts pushes
	// (written by the producer), head counts pops (written by the
	// consumer); in-flight = tail - head.
	_    [48]byte
	tail atomic.Uint64
	_    [56]byte
	head atomic.Uint64
	_    [56]byte

	// Producer-private mirror of tail plus the last head value it saw.
	ptail      uint64
	cachedHead uint64
	_          [48]byte

	// Consumer-private mirror of head plus the last tail value it saw.
	chead      uint64
	cachedTail uint64
}

// newSPSCRing returns a ring with capacity of at least minCap batches
// (rounded up to a power of two). minCap must be positive: a non-positive
// request used to fall through the rounding loop and silently return a
// capacity-1 ring, which would violate the link sizing invariant
// (data ≥ depth+1, free ≥ depth+3 — see newRingPair) without any signal.
// The panic makes a sizing bug loud at construction instead of surfacing
// as a deadlock or a dropped-batch tripwire mid-run.
func newSPSCRing(minCap int) *spscRing {
	if minCap <= 0 {
		panic(fmt.Sprintf("fame: spsc ring capacity must be positive, got %d", minCap))
	}
	size := 1
	for size < minCap {
		size <<= 1
	}
	return &spscRing{buf: make([]*token.Batch, size), mask: uint64(size - 1)}
}

// cap reports the ring's fixed capacity.
func (q *spscRing) cap() int { return len(q.buf) }

// len reports the current in-flight population. It is exact only when
// neither side is mid-operation; the drain path uses it after the worker
// barrier, where that holds.
func (q *spscRing) len() int { return int(q.tail.Load() - q.head.Load()) }

// push appends b, reporting false when the ring is full. Producer-only.
func (q *spscRing) push(b *token.Batch) bool {
	if q.ptail-q.cachedHead == uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if q.ptail-q.cachedHead == uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[q.ptail&q.mask] = b
	q.ptail++
	q.tail.Store(q.ptail)
	return true
}

// pop removes the oldest batch, reporting false when the ring is empty.
// Consumer-only.
func (q *spscRing) pop() (*token.Batch, bool) {
	if q.chead == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if q.chead == q.cachedTail {
			return nil, false
		}
	}
	b := q.buf[q.chead&q.mask]
	q.buf[q.chead&q.mask] = nil // let recycled storage die with the ring
	q.chead++
	q.head.Store(q.chead)
	return b, true
}
