package fame

import "repro/internal/token"

// batchRing is a growable FIFO of token batches backed by a power-of-two
// ring. channel.pop used to copy-shift a slice, making each pop O(queue
// length); with latency/step batches in flight, a high-latency link paid
// O(n) per round just shuffling pointers. The ring pops in O(1) and only
// allocates when the in-flight population grows, which in steady state is
// never.
type batchRing struct {
	buf  []*token.Batch
	head int
	n    int
}

func (r *batchRing) len() int { return r.n }

// at returns the i-th oldest batch without removing it (checkpoint reads
// the in-flight queue in FIFO order without disturbing it).
func (r *batchRing) at(i int) *token.Batch {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *batchRing) push(b *token.Batch) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = b
	r.n++
}

func (r *batchRing) pop() *token.Batch {
	b := r.buf[r.head]
	r.buf[r.head] = nil // drop the reference so recycled batches can be GC'd
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return b
}

func (r *batchRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*token.Batch, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.at(i)
	}
	r.buf = buf
	r.head = 0
}
