// Component state hashing for cross-process bit-identity checks. A
// distributed run cannot compare whole-stream StateHash values against a
// single-process reference — the runner's channel serialization depends
// on how the cluster was cut — so identity is checked per COMPONENT:
// each node and switch digests its full serialized state independently,
// and CombineHashes folds the (name, hash) set into one order-independent
// value. A recovered, resharded run that matches an undisturbed
// single-process run component-for-component is bit-identical where it
// matters: every register, queue, counter and statistic of the simulated
// target.
package manager

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// componentHash serializes one component through the snapshot format and
// digests the bytes. The mini-stream's header pins the FULL tree's
// topology hash and the cycle the state was captured at — so hashes from
// different topologies, or from different points in target time, never
// collide by accident. Step is deliberately zero: the local runner step
// differs between a whole-cluster deployment (gcd of full-latency links)
// and a partition (half-links), and must not leak into component
// identity.
func componentHash(topoHash uint64, cycle clock.Cycles, section string, s snapshot.Snapshotter) (uint64, error) {
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{
		TopologyHash: topoHash,
		Cycle:        uint64(cycle),
		Step:         0,
	})
	if err != nil {
		return 0, err
	}
	w.Section(section)
	if err := s.Save(w); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64(), nil
}

// ComponentHashes digests every node and switch of a whole-cluster
// deployment, keyed exactly like Partition.UnitHashes — the reference
// side of the distributed bit-identity check.
func (c *Cluster) ComponentHashes() (map[string]uint64, error) {
	out := make(map[string]uint64, len(c.Servers)+len(c.Switches))
	cycle := c.Runner.Cycle()
	for _, n := range c.Servers {
		h, err := componentHash(c.TopoHash, cycle, "node/"+n.Name(), n)
		if err != nil {
			return nil, fmt.Errorf("manager: hash node %q: %w", n.Name(), err)
		}
		out["node/"+n.Name()] = h
	}
	for _, sw := range c.Switches {
		h, err := componentHash(c.TopoHash, cycle, "switch/"+sw.Name(), sw)
		if err != nil {
			return nil, fmt.Errorf("manager: hash switch %q: %w", sw.Name(), err)
		}
		out["switch/"+sw.Name()] = h
	}
	return out, nil
}

// CombineHashes folds a component hash map into a single value,
// independent of which process contributed which component: entries are
// folded in sorted key order.
func CombineHashes(m map[string]uint64) uint64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%016x\n", k, m[k])
	}
	return h.Sum64()
}

// ReferenceHashes runs the spec's cluster to the horizon in-process —
// whole tree, no partitioning, no bridges — and returns its component
// hashes: the ground truth a distributed (and possibly recovered and
// resharded) run must match bit-for-bit.
func ReferenceHashes(spec ClusterSpec, horizon uint64) (map[string]uint64, error) {
	root, cfg, err := spec.Topology()
	if err != nil {
		return nil, err
	}
	cfg = normalizeConfig(cfg)
	cluster, err := Deploy(root, cfg)
	if err != nil {
		return nil, err
	}
	// Deploy already named everything; re-running the assignment pass is
	// idempotent and yields the identity list the workload ring needs.
	ids := assignIdentities(root, cfg)
	for _, id := range ids.servers {
		id.Node = cluster.NodeByName(id.Name)
	}
	if err := spec.Workload.Apply(ids.servers); err != nil {
		return nil, err
	}
	if spec.Parallel {
		err = cluster.Runner.RunParallel(clock.Cycles(horizon))
	} else {
		err = cluster.Runner.Run(clock.Cycles(horizon))
	}
	if err != nil {
		return nil, err
	}
	return cluster.ComponentHashes()
}

// MergeHashes unions per-process component hash maps, erroring on any
// component reported twice with different values (two processes claiming
// the same component is itself a supervision bug) or twice at all.
func MergeHashes(maps ...map[string]uint64) (map[string]uint64, error) {
	out := make(map[string]uint64)
	for _, m := range maps {
		for k, v := range m {
			if prev, ok := out[k]; ok {
				return nil, fmt.Errorf("manager: component %q reported by two processes (%016x, %016x)", k, prev, v)
			}
			out[k] = v
		}
	}
	return out, nil
}
