package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// The scale pass reproduces the shape of the paper's Figure 9: absolute
// simulation rate as the target cluster grows from a single rack to the
// aggregation- and root-switch tiers. Sizes map onto the paper's tree
// shapes (64 = 8x8 over one aggregation tier, 256 = 4x8x8, 1024 = 4x8x32
// — the full datacenter topology); anything else runs as a flat rack.
// Only the sequential scheduler is measured: the curve wants the
// per-cycle datapath cost, not host-side parallel speedup, and the gate
// compares the largest two points' rates against -scale-min-frac.

// scalePoint is one Fig. 9 measurement: the best-of-reps sim rate of a
// ping-loaded uniform tree at one node count.
type scalePoint struct {
	Nodes     int     `json:"nodes"`
	Fanouts   []int   `json:"fanouts"`
	Switches  int     `json:"switches"`
	Cycles    uint64  `json:"cycles"`
	WallNanos int64   `json:"wall_ns"`
	SimHz     float64 `json:"sim_hz"`
	Slowdown  float64 `json:"slowdown"`
}

// scaleFanouts maps a node count onto its benchmark topology shape.
func scaleFanouts(nodes int) []int {
	switch nodes {
	case 64:
		return []int{8, 8}
	case 256:
		return []int{4, 8, 8}
	case 1024:
		return []int{4, 8, 32}
	default:
		return []int{nodes}
	}
}

// benchScalePass measures the sim-rate-vs-scale curve: one ping-loaded
// deployment per size, one unbilled warm-up region, then best-of-reps.
func benchScalePass(sizes []int, rounds, reps int, linkLatency clock.Cycles) ([]scalePoint, error) {
	var points []scalePoint
	for _, nodes := range sizes {
		fanouts := scaleFanouts(nodes)
		var topo *core.Topology
		if len(fanouts) == 1 {
			topo = core.Rack("tor0", nodes, core.QuadCore)
		} else {
			var err error
			topo, err = core.Tree(fanouts, core.QuadCore)
			if err != nil {
				return nil, fmt.Errorf("scale %d nodes: %w", nodes, err)
			}
		}
		c, err := core.Deploy(topo, core.DeployConfig{LinkLatency: linkLatency})
		if err != nil {
			return nil, fmt.Errorf("scale %d nodes: %w", nodes, err)
		}
		step := c.Runner.Step()
		region := clock.Cycles(rounds) * step
		// Enough pings to keep every region loaded (reps + 1 warm-up).
		interval := 4 * step
		count := int((clock.Cycles(reps+1)*region+4*step)/interval) + 1
		for i, src := range c.Servers {
			dst := c.Servers[(i+1)%len(c.Servers)]
			src.Ping(0, dst.IP(), count, interval, nil)
		}
		runtime.GC()
		if _, err := c.Runner.Measure(region, clock.DefaultTargetClock, false); err != nil {
			return nil, fmt.Errorf("scale %d nodes warm-up: %w", nodes, err)
		}
		best := time.Duration(-1)
		for r := 0; r < reps; r++ {
			runtime.GC()
			rate, err := c.Runner.Measure(region, clock.DefaultTargetClock, false)
			if err != nil {
				return nil, fmt.Errorf("scale %d nodes: %w", nodes, err)
			}
			if best < 0 || rate.Wall < best {
				best = rate.Wall
			}
		}
		v := toVariant(region, best)
		points = append(points, scalePoint{
			Nodes:     nodes,
			Fanouts:   fanouts,
			Switches:  len(c.Switches),
			Cycles:    uint64(region),
			WallNanos: v.WallNanos,
			SimHz:     v.SimHz,
			Slowdown:  v.Slowdown,
		})
	}
	return points, nil
}

// checkScaleGate enforces the Fig. 9 shape bound: the largest size's sim
// rate must be at least minFrac of the second largest's. A switch
// datapath that degrades super-linearly with scale (per-round allocation,
// queue-scan regressions) collapses the tail of the curve and trips this
// before it reaches absurd sizes.
func checkScaleGate(points []scalePoint, minFrac float64) error {
	if len(points) < 2 {
		return fmt.Errorf("bench: -scale-min-frac set but the scale pass measured %d size(s), need at least 2", len(points))
	}
	largest, second := points[0], points[0]
	for _, p := range points[1:] {
		switch {
		case p.Nodes > largest.Nodes:
			second, largest = largest, p
		case p.Nodes > second.Nodes || second.Nodes == largest.Nodes:
			second = p
		}
	}
	if second.SimHz <= 0 {
		return fmt.Errorf("bench: scale gate: %d-node rate is zero", second.Nodes)
	}
	frac := largest.SimHz / second.SimHz
	if frac < minFrac {
		return fmt.Errorf("bench: scale curve: %d-node rate is %.2f of the %d-node rate, below the %.2f gate",
			largest.Nodes, frac, second.Nodes, minFrac)
	}
	return nil
}
