package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Snapshot is a point-in-time copy of every instrument in a registry.
// Each instrument is read atomically; the set as a whole is not a
// transaction (a concurrent writer may land between two reads), which is
// the usual and acceptable contract for monitoring data. Field ordering
// in every rendered form is sorted by metric name, so two snapshots of
// identical state render byte-identically — the same determinism contract
// the rest of the repo keeps for its tables.
type Snapshot struct {
	// Registry is the name of the registry this snapshot was taken from.
	Registry string `json:"registry"`
	// Counters maps metric name to count.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps metric name to value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps metric name to distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot summarises one histogram's distribution.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// Buckets lists only the occupied buckets in ascending bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one occupied histogram bucket: Count observations at or
// below UpperBound (exclusive upper edge of a power-of-two bucket).
type BucketCount struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// Mean returns the snapshot histogram's mean observation.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot captures the current value of every registered instrument.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Registry: r.name}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			for b := 0; b < histBuckets; b++ {
				if n := h.buckets[b].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: bucketUpperBound(b), Count: n})
				}
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON. encoding/json sorts
// map keys, so the output is deterministic for identical state.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series. Metric names that
// carry an inline label set (built with Label) have the histogram
// suffixes spliced before the label braces, as the format requires.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitLabels(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", base, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitLabels(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", base, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base, labels := splitLabels(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
			return err
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, fmt.Sprintf("le=\"%d\"", b.UpperBound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, joinLabels(labels, `le="+Inf"`), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n", base, braced(labels), h.Sum, base, braced(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// BaseName strips the inline label set from a metric name: the base of
// `switch_drops_total{switch="tor0"}` is "switch_drops_total". Callers
// use it to aggregate one logical metric across label values.
func BaseName(name string) string {
	base, _ := splitLabels(name)
	return base
}

// splitLabels separates a metric name from its inline label set:
// `a{b="c"}` becomes ("a", `b="c"`); a bare name returns ("a", "").
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges an existing label set with one extra pair and braces
// the result.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// braced re-wraps a label set in braces, or returns "" for no labels.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Table renders the snapshot as a fixed-width table in the repo's house
// style: one row per metric, histograms summarised as count/mean/p99.
func (s *Snapshot) Table() *stats.Table {
	t := stats.NewTable("Metric", "Kind", "Value")
	for _, name := range sortedKeys(s.Counters) {
		t.AddRow(name, "counter", s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		t.AddRow(name, "gauge", s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		t.AddRow(name, "histogram", fmt.Sprintf("n=%d mean=%.0f p99<=%d", h.Count, h.Mean(), h.p99()))
	}
	return t
}

// p99 returns the 0.99-quantile upper bound from the snapshot buckets.
func (h HistogramSnapshot) p99() uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(0.99 * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen > target {
			return b.UpperBound
		}
	}
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].UpperBound
	}
	return 0
}
