package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// Token-plane connection bootstrap for multi-process runs. A shard
// process owns one or more partition units ("subtrees") and dials one
// TCP connection per unit back to the coordinator; the 12-byte preamble
// written first tells the coordinator's accept loop which unit — and
// which assignment epoch — the connection belongs to, so conns from a
// previous (pre-recovery) epoch can be recognised and dropped.
const tokenPreambleMagic uint32 = 0x4653_5450 // "FSTP"

// DialToken dials the coordinator's token listener, retrying with
// jittered backoff until timeout, and writes the identifying preamble.
// The retry loop exists because a freshly assigned shard races the
// coordinator bringing its listener back up after a recovery.
func DialToken(addr string, subtree, epoch uint32, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for attempt := 1; ; attempt++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: dial token %s (subtree %d): timed out after %v: %w", addr, subtree, timeout, lastErr)
		}
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			lastErr = err
			time.Sleep(jitterBackoff(addr, attempt, 20*time.Millisecond))
			continue
		}
		var pre [12]byte
		binary.BigEndian.PutUint32(pre[0:4], tokenPreambleMagic)
		binary.BigEndian.PutUint32(pre[4:8], subtree)
		binary.BigEndian.PutUint32(pre[8:12], epoch)
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write(pre[:]); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		c.SetWriteDeadline(time.Time{})
		return c, nil
	}
}

// ReadTokenPreamble validates an accepted connection's preamble and
// returns which partition unit and epoch it announces.
func ReadTokenPreamble(c net.Conn, timeout time.Duration) (subtree, epoch uint32, err error) {
	var pre [12]byte
	c.SetReadDeadline(time.Now().Add(timeout))
	defer c.SetReadDeadline(time.Time{})
	if _, err := readFull(c, pre[:]); err != nil {
		return 0, 0, fmt.Errorf("transport: token preamble: %w", err)
	}
	if m := binary.BigEndian.Uint32(pre[0:4]); m != tokenPreambleMagic {
		return 0, 0, fmt.Errorf("transport: token preamble: bad magic %#x", m)
	}
	return binary.BigEndian.Uint32(pre[4:8]), binary.BigEndian.Uint32(pre[8:12]), nil
}

func readFull(c net.Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
