package experiments

import "testing"

func TestSingleNodeSuite(t *testing.T) {
	r, err := SingleNode(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	byName := map[string]SingleNodeRow{}
	for _, row := range r.Rows {
		byName[row.Kernel] = row
		if row.IPC <= 0 || row.IPC > 1 {
			t.Errorf("%s: IPC = %.3f outside (0,1]", row.Kernel, row.IPC)
		}
	}
	if byName["sieve"].Check != 309 {
		t.Errorf("sieve primes = %d, want 309 (primes below 2048)", byName["sieve"].Check)
	}
	// The DRAM-bound stride kernel must have markedly lower IPC than the
	// ALU loop.
	if byName["memstride"].IPC >= byName["alu-loop"].IPC/2 {
		t.Errorf("memstride IPC (%.3f) not clearly below alu-loop (%.3f)",
			byName["memstride"].IPC, byName["alu-loop"].IPC)
	}
}
