package manager

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/transport"
)

// TestSupervisorDeadPeer is the distributed-robustness acceptance test: a
// two-runner simulation where the peer host dies mid-run. The supervisor
// must detect the dead bridge (deadline + bounded reconnect), degrade it,
// keep the surviving partition simulating to the horizon, and report
// per-node status with the remote node marked down.
func TestSupervisorDeadPeer(t *testing.T) {
	const linkLat = 3200
	const horizon = 200 * linkLat
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
	c1, c2 := net.Pipe()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Host 2 simulates node b... for three steps, then the host dies.
		b := softstack.NewNode(softstack.Config{Name: "b", MAC: 0x2, IP: 0x0a000002, StaticARP: arp})
		br := transport.NewBridge("bridge2", c2)
		r := fame.NewRunner()
		r.Add(b)
		r.Add(br)
		if err := r.Connect(b, 0, br, 0, linkLat); err != nil {
			panic(err)
		}
		for i := 0; i < 3; i++ {
			if err := r.Run(linkLat); err != nil {
				panic(err)
			}
		}
		c2.Close()
	}()

	// Host 1: node a behind a hardened bridge. The read deadline turns the
	// dead peer into an error; the redial policy fails (the host is gone),
	// bounding recovery attempts.
	a := softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001, StaticARP: arp})
	br := transport.NewBridgeConfig("to-host2", c1, transport.BridgeConfig{
		ReadTimeout:   100 * time.Millisecond,
		WriteTimeout:  100 * time.Millisecond,
		MaxReconnects: 2,
		BackoffBase:   2 * time.Millisecond,
		Redial:        func() (io.ReadWriter, error) { return nil, fmt.Errorf("no route to host") },
	})
	r := fame.NewRunner()
	r.Add(a)
	r.Add(br)
	if err := r.Connect(a, 0, br, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	// Traffic toward the doomed peer, so the failure happens mid-workload.
	a.Ping(0, 0x0a000002, 50, 10*linkLat, func([]softstack.PingResult) {})

	s := NewSupervisor(r)
	s.AddLocal("a")
	s.Watch("host2", br, "b")
	rep, err := s.RunTo(horizon)
	wg.Wait()
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if rep.Cycle != horizon {
		t.Errorf("surviving partition stopped at cycle %d, want %d", rep.Cycle, horizon)
	}
	if !rep.Partial {
		t.Error("report does not flag partial results after a peer death")
	}
	if !br.Degraded() {
		t.Error("dead peer's bridge was not degraded")
	}
	byName := map[string]NodeStatus{}
	for _, ns := range rep.Nodes {
		byName[ns.Name] = ns
	}
	if ns := byName["a"]; !ns.Up || ns.LastCycle != horizon {
		t.Errorf("local node status = %+v, want up at cycle %d", ns, horizon)
	}
	ns, ok := byName["b"]
	if !ok {
		t.Fatal("remote node missing from report")
	}
	if ns.Up {
		t.Error("remote node behind a dead bridge reported as up")
	}
	if ns.Err == nil {
		t.Error("remote node status carries no failure cause")
	}
	// Host 2 completed exactly 3 token exchanges before dying, so that is
	// the last cycle the report can vouch for.
	if want := clock.Cycles(3 * linkLat); ns.LastCycle != want {
		t.Errorf("remote LastCycle = %d, want %d", ns.LastCycle, want)
	}
	if text := rep.String(); !strings.Contains(text, "DOWN") || !strings.Contains(text, "partial=true") {
		t.Errorf("report rendering missing status markers:\n%s", text)
	}
}

// TestSupervisorAllHealthy: with no peers (or healthy ones), RunTo is just
// a sliced Run and reports everything up.
func TestSupervisorAllHealthy(t *testing.T) {
	topo := NewSwitchNode("tor0")
	for i := 0; i < 2; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	c, err := Deploy(topo, DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Supervise()
	rep, err := s.RunTo(20 * c.LinkLatency)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Error("healthy run flagged partial")
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("report has %d nodes, want 2", len(rep.Nodes))
	}
	for _, ns := range rep.Nodes {
		if !ns.Up || ns.LastCycle != rep.Cycle {
			t.Errorf("healthy node status %+v", ns)
		}
	}
}
