package nic

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
	"repro/internal/token"
)

func TestNICSnapshotConformance(t *testing.T) {
	n := New(DefaultConfig(0xaa), newFakeMem())
	n.SetRateLimit(3, 7)
	n.MMIOStore(RegIntrMask, 0x3)
	// A complete small frame lands in the packet buffer; a second frame is
	// left half-assembled so rxAssembly is non-empty at save time.
	now := clock.Cycles(0)
	for i := 0; i < 4; i++ {
		n.Tick(now, token.Token{Data: uint64(0x1111 + i), Valid: true, Last: i == 3})
		now++
	}
	for i := 0; i < 3; i++ {
		n.Tick(now, token.Token{Data: uint64(0x2222 + i), Valid: true})
		now++
	}
	snaptest.RoundTrip(t, n, func() snapshot.Snapshotter {
		return New(DefaultConfig(0xaa), newFakeMem())
	})
}

func TestNICSnapshotWithSendInFlight(t *testing.T) {
	mem := newFakeMem()
	payload := []byte("0123456789abcdef0123456789abcdef")
	copy(mem.mem[0x100:], payload)
	n := New(DefaultConfig(0xbb), mem)
	n.MMIOStore(RegSendReq, 0x100|uint64(len(payload))<<48)
	// Tick a few cycles: the request is picked up into the pipeline but
	// the DMA latency keeps it from fully draining.
	for i := 0; i < 8; i++ {
		n.Tick(clock.Cycles(i), token.Token{})
	}
	snaptest.RoundTrip(t, n, func() snapshot.Snapshotter {
		return New(DefaultConfig(0xbb), newFakeMem())
	})
}
