// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment is a pure function from a Scale (full or
// quick) to a typed result with a Render method that prints the same rows
// or series the paper reports. The per-experiment index in DESIGN.md maps
// each entry here to its paper counterpart; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects experiment sizing. Quick keeps every experiment's shape
// while cutting node counts and measurement windows so the full suite
// runs in seconds (used by tests and the default bench run); Full matches
// the paper's parameters where feasible.
type Scale struct {
	// Quick requests reduced sizing.
	Quick bool
}

// Result is a rendered experiment outcome.
type Result interface {
	// Title names the experiment as in the paper ("Figure 5", ...).
	Title() string
	// Render prints the result as text rows/series.
	Render() string
}

// Runner is an experiment entry point.
type Runner func(Scale) (Result, error)

var registry = map[string]Runner{}
var registryOrder []string

// register adds an experiment under a stable name.
func register(name string, fn Runner) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiments: %q registered twice", name))
	}
	registry[name] = fn
	registryOrder = append(registryOrder, name)
}

// Names lists the registered experiments in registration order.
func Names() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}

// Run executes one experiment by name.
func Run(name string, sc Scale) (Result, error) {
	fn, ok := registry[name]
	if !ok {
		var known []string
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown experiment %q (have: %s)", name, strings.Join(known, ", "))
	}
	return fn(sc)
}

// textResult is the common Result implementation.
type textResult struct {
	title string
	body  string
}

func (r textResult) Title() string  { return r.title }
func (r textResult) Render() string { return r.body }
