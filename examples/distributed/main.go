// distributed splits one cycle-exact simulation across several simulator
// processes, the way FireSim spans EC2 instances — and then survives a
// host failure mid-run. The coordinator owns the root switch and spawns
// shard worker processes (re-execing this binary with the "shard" arg),
// each hosting a slice of the cluster behind a TCP token bridge. A chaos
// schedule SIGKILLs one shard partway through; the coordinator detects
// the death, rewinds every process to the last coordinated checkpoint,
// re-packs the lost nodes onto the survivors, and finishes the run —
// bit-identical, component for component, to an undisturbed
// single-process simulation of the same target.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/manager"
)

const (
	nodes     = 6
	procs     = 3
	linkLat   = 512
	horizon   = 16384
	ckptEvery = 2048
)

func main() {
	// Shard mode: this same binary, re-exec'd by the coordinator below.
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		err := manager.RunShard(manager.ShardConfig{
			ControlAddr: os.Getenv("FIRESIM_SHARD_CONTROL"),
			Name:        os.Getenv("FIRESIM_SHARD_NAME"),
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	spec, err := manager.RackSpec(nodes, manager.DeployConfig{LinkLatency: linkLat, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Every node streams paced frames to its ring neighbour, so every
	// checkpoint interval moves traffic across every partition boundary.
	spec.Workload = &manager.WorkloadSpec{Kind: "stream", StartAt: 600, FrameBytes: 200, Gbps: 1, StopAt: horizon}

	// The chaos schedule: SIGKILL shard1 once it passes cycle 6144. With
	// no respawn budget its nodes are re-packed onto the two survivors.
	chaos, err := faults.ParseChaos("kill:shard1@6144")
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "firesim-example-dist-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coordinator: %d nodes across %d shard processes, SIGKILL of shard1 scheduled at cycle 6144\n\n", nodes, procs)
	report, err := manager.RunDistributed(manager.CoordinatorConfig{
		Spec:          spec,
		Procs:         procs,
		BaseDir:       dir,
		CkptEvery:     ckptEvery,
		Horizon:       horizon,
		MaxRecoveries: 3,
		Chaos:         chaos,
		Spawn: func(name, controlAddr string) *exec.Cmd {
			cmd := exec.Command(self, "shard")
			cmd.Env = append(os.Environ(),
				"FIRESIM_SHARD_CONTROL="+controlAddr,
				"FIRESIM_SHARD_NAME="+name)
			return cmd
		},
		Log: func(format string, a ...any) { fmt.Printf(format+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrun reached cycle %d with %d surviving process(es), healing %d failure(s) over %d epoch(s)\n",
		report.Cycle, report.FinalProcs, report.Recoveries, report.Epochs)

	// The proof: an undisturbed single-process run of the same target.
	ref, err := manager.ReferenceHashes(spec, horizon)
	if err != nil {
		log.Fatal(err)
	}
	for k, want := range ref {
		if got := report.Hashes[k]; got != want {
			log.Fatalf("component %s diverged: distributed %016x, reference %016x", k, got, want)
		}
	}
	if report.Combined != manager.CombineHashes(ref) {
		log.Fatal("combined hash diverged")
	}
	clk := clock.New(clock.DefaultTargetClock)
	fmt.Printf("\nall %d components bit-identical to the undisturbed single-process run\n", len(ref))
	fmt.Printf("(%d target cycles ≈ %.1f us of target time, killed and healed mid-flight)\n",
		report.Cycle, clk.Micros(clock.Cycles(report.Cycle)))
}
