package pfa

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
)

const usCycles = 3200

// runApp wires an app node and a memory blade through a ToR switch and
// runs the workload to completion.
func runApp(t *testing.T, mode Mode, localPages int, pattern AccessPattern) Result {
	t.Helper()
	appNode := softstack.NewNode(softstack.Config{Name: "app", MAC: 0x1, IP: 0x0a000001, Seed: 1})
	bladeNode := softstack.NewNode(softstack.Config{Name: "blade", MAC: 0x2, IP: 0x0a000002, Seed: 2})
	NewBlade(bladeNode)

	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	sw.MACTable().Set(0x1, 0)
	sw.MACTable().Set(0x2, 1)
	r := fame.NewRunner()
	r.Add(appNode)
	r.Add(bladeNode)
	r.Add(sw)
	const linkLat = 2 * usCycles
	if err := r.Connect(appNode, 0, sw, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(bladeNode, 0, sw, 1, linkLat); err != nil {
		t.Fatal(err)
	}

	pattern.Reset()
	app := NewApp(appNode, AppConfig{
		Mode:             mode,
		Blade:            0x2,
		LocalPages:       localPages,
		Pattern:          pattern,
		ComputePerAccess: clock.Cycles(2 * usCycles), // 2 us of compute per page touch
	}, 0)

	for !app.Done() && r.Cycle() < 40_000_000_000 {
		if err := r.Run(linkLat * 64); err != nil {
			t.Fatal(err)
		}
	}
	if !app.Done() {
		t.Fatal("application did not complete")
	}
	return app.Result()
}

const (
	testPages    = 2048
	testAccesses = 20000
)

func genome() AccessPattern { return NewGenomePattern(testPages, testAccesses, 99) }
func qsort() AccessPattern  { return NewQsortPattern(testPages, 2) }

func TestAllLocalNoFaults(t *testing.T) {
	res := runApp(t, SoftwarePaging, testPages, genome())
	// First touches still fault (cold misses into empty local memory)...
	if res.Evictions != 0 {
		t.Errorf("evictions = %d with all-local memory", res.Evictions)
	}
	if res.Faults > testPages {
		t.Errorf("faults = %d, want <= %d cold misses", res.Faults, testPages)
	}
}

func TestEvictionCountsMatchAcrossModes(t *testing.T) {
	// "the number of evicted pages is the same in both cases" — the
	// replacement policy is mode-independent.
	sw := runApp(t, SoftwarePaging, testPages/2, genome())
	hw := runApp(t, PFAMode, testPages/2, genome())
	if sw.Evictions != hw.Evictions {
		t.Errorf("evictions differ: software %d, PFA %d", sw.Evictions, hw.Evictions)
	}
	if sw.Faults != hw.Faults {
		t.Errorf("faults differ: software %d, PFA %d", sw.Faults, hw.Faults)
	}
	if sw.Evictions == 0 {
		t.Error("test produced no evictions; pattern too small")
	}
}

func TestPFASpeedupOnGenome(t *testing.T) {
	// Figure 11: on the thrashing Genome workload the PFA reduces
	// overhead by up to ~1.4x.
	sw := runApp(t, SoftwarePaging, testPages/2, genome())
	hw := runApp(t, PFAMode, testPages/2, genome())
	ratio := float64(sw.Runtime) / float64(hw.Runtime)
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("software/PFA runtime ratio = %.2f, want ~1.2-1.5 (paper: up to 1.4)", ratio)
	}
}

func TestQsortLessSensitiveThanGenome(t *testing.T) {
	// "Quicksort is known to have good cache behavior and does not
	// experience significant slowdowns when swapping" — its SW/PFA gap
	// must be smaller than Genome's at the same local-memory fraction.
	gSW := runApp(t, SoftwarePaging, testPages/2, genome())
	gHW := runApp(t, PFAMode, testPages/2, genome())
	qSW := runApp(t, SoftwarePaging, testPages/2, qsort())
	qHW := runApp(t, PFAMode, testPages/2, qsort())

	gRatio := float64(gSW.Runtime) / float64(gHW.Runtime)
	qRatio := float64(qSW.Runtime) / float64(qHW.Runtime)
	if qRatio >= gRatio {
		t.Errorf("qsort ratio (%.3f) >= genome ratio (%.3f); locality advantage lost", qRatio, gRatio)
	}
}

func TestQsortLocality(t *testing.T) {
	// Depth-first partitioning over half-resident memory: only the
	// top few recursion levels fault; the vast majority of accesses hit.
	res := runApp(t, SoftwarePaging, testPages/2, qsort())
	// Count total accesses in the trace.
	q := qsort()
	accesses := uint64(0)
	for {
		if _, ok := q.Next(); !ok {
			break
		}
		accesses++
	}
	if res.Faults*3 >= accesses {
		t.Errorf("qsort miss rate too high: %d faults / %d accesses", res.Faults, accesses)
	}
}

func TestMetadataTimeReduction(t *testing.T) {
	// "using the PFA leads to a 2.5x reduction in metadata management
	// time on average".
	sw := runApp(t, SoftwarePaging, testPages/2, genome())
	hw := runApp(t, PFAMode, testPages/2, genome())
	ratio := float64(sw.MetadataTime) / float64(hw.MetadataTime)
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("metadata time ratio = %.2f, want ~2.5", ratio)
	}
}

func TestRuntimeShrinksWithMoreLocalMemory(t *testing.T) {
	quarter := runApp(t, PFAMode, testPages/4, genome())
	half := runApp(t, PFAMode, testPages/2, genome())
	full := runApp(t, PFAMode, testPages, genome())
	if !(quarter.Runtime > half.Runtime && half.Runtime > full.Runtime) {
		t.Errorf("runtime not monotone in local memory: %d, %d, %d",
			quarter.Runtime, half.Runtime, full.Runtime)
	}
}

func TestBladeCounts(t *testing.T) {
	appNode := softstack.NewNode(softstack.Config{Name: "app", MAC: 0x1, IP: 0x0a000001})
	bladeNode := softstack.NewNode(softstack.Config{Name: "blade", MAC: 0x2, IP: 0x0a000002})
	b := NewBlade(bladeNode)
	_ = appNode
	// Drive the handler directly: a fetch yields a response; an evict is
	// absorbed.
	req := make([]byte, 9)
	req[0] = opFetch
	b.onRequest(0, 0x1, req)
	if b.Served != 1 {
		t.Errorf("Served = %d", b.Served)
	}
	ev := make([]byte, 9+PageBytes)
	ev[0] = opEvict
	b.onRequest(0, 0x1, ev)
	if b.Stored != 1 {
		t.Errorf("Stored = %d", b.Stored)
	}
	// Malformed requests are ignored.
	b.onRequest(0, 0x1, []byte{opFetch})
	if b.Served != 1 {
		t.Error("malformed request served")
	}
}

func TestPatterns(t *testing.T) {
	g := NewGenomePattern(100, 10, 1)
	seen := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		if p >= 100 {
			t.Errorf("genome page %d out of range", p)
		}
		seen++
	}
	if seen != 10 {
		t.Errorf("genome yielded %d accesses, want 10", seen)
	}
	g.Reset()
	if p, ok := g.Next(); !ok || p >= 100 {
		t.Error("genome Reset failed")
	}

	q := NewQsortPattern(4, 2)
	var got []uint64
	for {
		p, ok := q.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	// pages=4, minSegment=2: full pass then the two halves depth-first.
	want := []uint64{0, 1, 2, 3, 0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("qsort yielded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("qsort sequence = %v, want %v", got, want)
		}
	}
}

func TestGenomeDeterminism(t *testing.T) {
	a := NewGenomePattern(1000, 50, 7)
	b := NewGenomePattern(1000, 50, 7)
	for {
		pa, oka := a.Next()
		pb, okb := b.Next()
		if oka != okb || pa != pb {
			t.Fatal("same-seed genome patterns diverge")
		}
		if !oka {
			break
		}
	}
}

var _ = ethernet.MAC(0) // keep ethernet import for MAC literals above
