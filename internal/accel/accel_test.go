package accel

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/riscv"
	"repro/internal/soc"
	"repro/internal/token"
)

// fakeMem is a flat DMA target with fixed latency.
type fakeMem struct {
	mem     []byte
	latency clock.Cycles
}

func newFakeMem() *fakeMem { return &fakeMem{mem: make([]byte, 1<<20), latency: 100} }

func (m *fakeMem) ReadDMA(now clock.Cycles, addr uint64, buf []byte) clock.Cycles {
	copy(buf, m.mem[addr:])
	return now + m.latency
}

func (m *fakeMem) WriteDMA(now clock.Cycles, addr uint64, data []byte) clock.Cycles {
	copy(m.mem[addr:], data)
	return now + m.latency
}

func (m *fakeMem) put64(addr uint64, v uint64) {
	for i := 0; i < 8; i++ {
		m.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

func (m *fakeMem) get64(addr uint64) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(m.mem[addr+uint64(i)])
	}
	return v
}

func runOp(t *testing.T, mem *fakeMem, op uint64, n uint64) *Vector {
	t.Helper()
	v := New(DefaultConfig(), mem)
	v.MMIOStore(0, RegSrcA, 0x1000)
	v.MMIOStore(0, RegSrcB, 0x2000)
	v.MMIOStore(0, RegDst, 0x3000)
	v.MMIOStore(0, RegCount, n)
	v.MMIOStore(0, RegOp, op)
	v.MMIOStore(0, RegStart, 1)
	// Poll until done.
	now := clock.Cycles(1)
	for v.MMIOLoad(now, RegStatus) == 1 {
		now++
		if now > 1_000_000 {
			t.Fatal("vector op never completed")
		}
	}
	return v
}

func TestVectorAdd(t *testing.T) {
	mem := newFakeMem()
	const n = 17
	for i := uint64(0); i < n; i++ {
		mem.put64(0x1000+i*8, i*3)
		mem.put64(0x2000+i*8, i*4)
	}
	v := runOp(t, mem, OpAdd, n)
	for i := uint64(0); i < n; i++ {
		if got := mem.get64(0x3000 + i*8); got != i*7 {
			t.Errorf("dst[%d] = %d, want %d", i, got, i*7)
		}
	}
	if st := v.Stats(); st.Ops != 1 || st.Elements != n {
		t.Errorf("stats = %+v", st)
	}
}

func TestVectorMulAndMacProperty(t *testing.T) {
	check := func(a, b, c uint64) bool {
		mem := newFakeMem()
		mem.put64(0x1000, a)
		mem.put64(0x2000, b)
		mem.put64(0x3000, c)
		runOp(t, mem, OpMac, 1)
		return mem.get64(0x3000) == c+a*b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTimingScalesWithLength(t *testing.T) {
	mem := newFakeMem()
	v := New(DefaultConfig(), mem)
	dur := func(n uint64) clock.Cycles {
		v.MMIOStore(0, RegSrcA, 0x1000)
		v.MMIOStore(0, RegSrcB, 0x2000)
		v.MMIOStore(0, RegDst, 0x3000)
		v.MMIOStore(0, RegCount, n)
		v.MMIOStore(0, RegOp, OpAdd)
		v.MMIOStore(0, RegStart, 1)
		d := v.busyUntil
		v.MMIOLoad(d, RegStatus) // retire
		return d
	}
	short := dur(4)
	long := dur(4096)
	if long <= short {
		t.Errorf("4096-element op (%d cycles) not slower than 4-element (%d)", long, short)
	}
	// Lane throughput: the compute portion is ~n/lanes cycles.
	wantCompute := clock.Cycles(4096 / 4)
	if long < wantCompute {
		t.Errorf("long op = %d cycles, below lane-bound compute %d", long, wantCompute)
	}
}

func TestInterrupt(t *testing.T) {
	mem := newFakeMem()
	v := New(DefaultConfig(), mem)
	v.MMIOStore(0, RegIntrEn, 1)
	v.MMIOStore(0, RegCount, 4)
	v.MMIOStore(0, RegStart, 1)
	if v.IntrPending() {
		t.Error("interrupt pending while busy")
	}
	// Completion observed via status read asserts the interrupt.
	for now := clock.Cycles(1); v.MMIOLoad(now, RegStatus) == 1; now++ {
	}
	if !v.IntrPending() {
		t.Error("no completion interrupt")
	}
}

func TestZeroCountIgnored(t *testing.T) {
	v := New(DefaultConfig(), newFakeMem())
	v.MMIOStore(0, RegCount, 0)
	v.MMIOStore(0, RegStart, 1)
	if v.MMIOLoad(1, RegStatus) != 0 {
		t.Error("zero-length op went busy")
	}
}

// TestVectorOnBlade runs the accelerator from real RV64 code on the
// cycle-exact blade, comparing against a scalar loop: the vector unit
// must produce identical results and finish in fewer cycles — the
// hardware-software co-design loop the accelerator slots exist for.
func TestVectorOnBlade(t *testing.T) {
	const n = 256
	const accelBase = 0x6200_0000
	const srcA, srcB, dst = soc.DRAMBase + 0x10000, soc.DRAMBase + 0x20000, soc.DRAMBase + 0x30000

	scalar := func() clock.Cycles {
		a := riscv.NewAsm()
		a.LI64(riscv.T0, srcA)
		a.LI64(riscv.T1, srcB)
		a.LI64(riscv.T2, dst)
		a.LI(riscv.T3, n)
		a.Label("loop")
		a.LD(riscv.T4, riscv.T0, 0)
		a.LD(riscv.T5, riscv.T1, 0)
		a.ADD(riscv.T4, riscv.T4, riscv.T5)
		a.SD(riscv.T4, riscv.T2, 0)
		a.ADDI(riscv.T0, riscv.T0, 8)
		a.ADDI(riscv.T1, riscv.T1, 8)
		a.ADDI(riscv.T2, riscv.T2, 8)
		a.ADDI(riscv.T3, riscv.T3, -1)
		a.BNE(riscv.T3, riscv.Zero, "loop")
		a.LI(riscv.T6, int32(soc.PowerOff))
		a.SD(riscv.Zero, riscv.T6, 0)
		return runBlade(t, a, nil)
	}

	vector := func() clock.Cycles {
		a := riscv.NewAsm()
		a.LI64(riscv.T0, accelBase)
		a.LI64(riscv.T1, srcA)
		a.SD(riscv.T1, riscv.T0, RegSrcA)
		a.LI64(riscv.T1, srcB)
		a.SD(riscv.T1, riscv.T0, RegSrcB)
		a.LI64(riscv.T1, dst)
		a.SD(riscv.T1, riscv.T0, RegDst)
		a.LI(riscv.T1, n)
		a.SD(riscv.T1, riscv.T0, RegCount)
		a.SD(riscv.Zero, riscv.T0, RegOp) // OpAdd
		a.SD(riscv.T1, riscv.T0, RegStart)
		a.Label("poll")
		a.LD(riscv.T2, riscv.T0, RegStatus)
		a.BNE(riscv.T2, riscv.Zero, "poll")
		a.LI(riscv.T6, int32(soc.PowerOff))
		a.SD(riscv.Zero, riscv.T6, 0)
		return runBlade(t, a, func(s *soc.SoC) {
			if err := s.RegisterDevice(accelBase, New(DefaultConfig(), s.DMA())); err != nil {
				t.Fatal(err)
			}
		})
	}

	tScalar := scalar()
	tVector := vector()
	if tVector >= tScalar {
		t.Errorf("vector add (%d cycles) not faster than scalar loop (%d cycles)", tVector, tScalar)
	}
}

var lastBladeSoC *soc.SoC

// runBlade boots the program on a 1-core blade with operand arrays
// initialised, runs to power-off, verifies dst, and returns the cycle
// count.
func runBlade(t *testing.T, a *riscv.Asm, setup func(*soc.SoC)) clock.Cycles {
	t.Helper()
	prog, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	s, err := soc.New(soc.Config{Name: "blade", Cores: 1, MAC: 1}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(s)
	}
	const n = 256
	for i := uint64(0); i < n; i++ {
		s.DRAM().Write64(0x10000+i*8, i)
		s.DRAM().Write64(0x20000+i*8, i*10)
	}
	const step = 256
	in := []*token.Batch{token.NewBatch(step)}
	out := []*token.Batch{token.NewBatch(step)}
	cycles := clock.Cycles(0)
	for !s.Halted() && cycles < 10_000_000 {
		out[0].Reset(step)
		s.TickBatch(step, in, out)
		cycles += step
	}
	if !s.Halted() {
		t.Fatalf("blade did not power off (pc=%#x)", s.Core(0).PC)
	}
	for i := uint64(0); i < n; i++ {
		if got := s.DRAM().Read64(0x30000 + i*8); got != i+i*10 {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i+i*10)
		}
	}
	lastBladeSoC = s
	return s.Core(0).Cycle
}
