package switchmodel

// This file carries a reference implementation of the switch datapath as it
// existed before the zero-allocation rewrite: container/heap with
// interface{} boxing, a fresh Packet and flit slice per ingress packet, a
// fresh []int per routing decision, per-port struct copies for broadcast,
// and append-and-reslice egress queues. It is kept verbatim (module the
// type renames) as the semantic oracle: TestSwitchStreamEquivalenceFuzz
// drives both implementations with identical random token streams —
// broadcasts, overflows, staleness, stalls, packets spanning rounds — and
// demands bit-identical output tokens and stats every round. The paired
// benchmarks measure the rewrite's effect on dense and idle rounds.

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

type refPacket struct {
	flits   []uint64
	inPort  int
	release clock.Cycles
	seq     uint64
}

type refPending []*refPacket

func (h refPending) Len() int { return len(h) }
func (h refPending) Less(i, j int) bool {
	if h[i].release != h[j].release {
		return h[i].release < h[j].release
	}
	return h[i].seq < h[j].seq
}
func (h refPending) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refPending) Push(x interface{}) { *h = append(*h, x.(*refPacket)) }
func (h *refPending) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

type refOutPort struct {
	queue       []*refPacket
	queuedBytes int
	tx          *refPacket
	txFlit      int
}

type refSwitch struct {
	cfg   Config
	table map[ethernet.MAC]int
	cycle clock.Cycles
	seq   uint64
	in    [][]uint64
	out   []refOutPort
	queue refPending
	stats Stats
	stall func(port int, cycle clock.Cycles) bool
}

func newRefSwitch(cfg Config) *refSwitch {
	if cfg.SwitchingLatency == 0 {
		cfg.SwitchingLatency = DefaultSwitchingLatency
	}
	if cfg.OutputBufferBytes == 0 {
		cfg.OutputBufferBytes = DefaultOutputBufferBytes
	}
	return &refSwitch{
		cfg:   cfg,
		table: make(map[ethernet.MAC]int),
		in:    make([][]uint64, cfg.Ports),
		out:   make([]refOutPort, cfg.Ports),
	}
}

func (rs *refSwitch) route(pkt *refPacket) []int {
	dst := ethernet.DstFromFirstFlit(pkt.flits[0])
	if dst != ethernet.Broadcast {
		if port, ok := rs.table[dst]; ok {
			if port == pkt.inPort {
				return nil
			}
			return []int{port}
		}
	}
	ports := make([]int, 0, rs.cfg.Ports-1)
	for p := 0; p < rs.cfg.Ports; p++ {
		if p != pkt.inPort {
			ports = append(ports, p)
		}
	}
	return ports
}

func (rs *refSwitch) tickBatch(n int, in, out []*token.Batch) {
	for p := 0; p < rs.cfg.Ports; p++ {
		for _, slot := range in[p].Slots {
			rs.in[p] = append(rs.in[p], slot.Tok.Data)
			rs.stats.FlitsIn++
			if slot.Tok.Last {
				pkt := &refPacket{
					flits:   rs.in[p],
					inPort:  p,
					release: rs.cycle + clock.Cycles(slot.Offset) + rs.cfg.SwitchingLatency,
					seq:     rs.seq,
				}
				rs.seq++
				rs.in[p] = nil
				rs.stats.PacketsIn++
				heap.Push(&rs.queue, pkt)
			}
		}
	}
	for rs.queue.Len() > 0 {
		pkt := heap.Pop(&rs.queue).(*refPacket)
		ports := rs.route(pkt)
		if len(ports) == 0 {
			rs.stats.DropsUnroutable++
			continue
		}
		for _, op := range ports {
			o := &rs.out[op]
			bytes := len(pkt.flits) * ethernet.FlitSize
			if o.queuedBytes+bytes > rs.cfg.OutputBufferBytes {
				rs.stats.DropsBufFull++
				continue
			}
			dup := pkt
			if len(ports) > 1 {
				c := *pkt
				dup = &c
			}
			o.queue = append(o.queue, dup)
			o.queuedBytes += bytes
		}
	}
	for p := 0; p < rs.cfg.Ports; p++ {
		rs.releasePort(p, n, out[p])
	}
	rs.cycle += clock.Cycles(n)
}

func (rs *refSwitch) releasePort(p int, n int, out *token.Batch) {
	o := &rs.out[p]
	for i := 0; i < n; i++ {
		now := rs.cycle + clock.Cycles(i)
		if rs.stall != nil && rs.stall(p, now) {
			rs.stats.StallCycles++
			continue
		}
		if o.tx == nil {
			for len(o.queue) > 0 {
				head := o.queue[0]
				if head.release > now {
					break
				}
				if rs.cfg.MaxReleaseDelay > 0 && now-head.release > rs.cfg.MaxReleaseDelay {
					o.queue = o.queue[1:]
					o.queuedBytes -= len(head.flits) * ethernet.FlitSize
					rs.stats.DropsStale++
					continue
				}
				o.tx = head
				o.txFlit = 0
				o.queue = o.queue[1:]
				break
			}
		}
		if o.tx == nil {
			if len(o.queue) == 0 {
				return
			}
			next := o.queue[0].release
			if next >= rs.cycle+clock.Cycles(n) {
				return
			}
			if j := int(next - rs.cycle); j > i {
				i = j - 1
			}
			continue
		}
		flit := o.tx.flits[o.txFlit]
		last := o.txFlit == len(o.tx.flits)-1
		out.Put(i, token.Token{Data: flit, Valid: true, Last: last})
		rs.stats.FlitsOut++
		rs.stats.BytesSwitched += ethernet.FlitSize
		o.txFlit++
		if last {
			o.queuedBytes -= len(o.tx.flits) * ethernet.FlitSize
			o.tx = nil
			rs.stats.PacketsOut++
		}
	}
}

// fuzzFlitStream generates, per port, an ordered stream of (flit, last)
// pairs — whole frames destined to known MACs, unknown MACs, the broadcast
// address, or the sender's own port (unroutable reflection).
type fuzzFlit struct {
	data uint64
	last bool
}

func fuzzFrame(t *testing.T, rng *rand.Rand, ports int) []fuzzFlit {
	t.Helper()
	var dst ethernet.MAC
	switch rng.Intn(5) {
	case 0:
		dst = ethernet.Broadcast
	case 1:
		dst = ethernet.MAC(0xdead_0000) + ethernet.MAC(rng.Intn(4)) // unknown: floods
	default:
		dst = ethernet.MAC(0x0200_0000_0001) + ethernet.MAC(rng.Intn(ports)) // known
	}
	src := ethernet.MAC(0x0200_0000_1000) + ethernet.MAC(rng.Intn(ports))
	flits := mkFrameFlits(t, dst, src, rng.Intn(80))
	out := make([]fuzzFlit, len(flits))
	for i, f := range flits {
		out[i] = fuzzFlit{data: f, last: i == len(flits)-1}
	}
	return out
}

// TestSwitchStreamEquivalenceFuzz is the old-vs-new token-stream
// equivalence keystone: for many seeded random configurations and traffic
// patterns, the pooled/heap/ring datapath must emit exactly the token
// streams and stats of the pre-rewrite implementation, round by round.
func TestSwitchStreamEquivalenceFuzz(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) * 7919))
			ports := 2 + rng.Intn(4)
			cfg := Config{
				Name:             "fuzz",
				Ports:            ports,
				SwitchingLatency: clock.Cycles(1 + rng.Intn(16)),
			}
			if rng.Intn(2) == 0 {
				cfg.OutputBufferBytes = 64 + rng.Intn(512) // small: force overflows
			}
			if rng.Intn(2) == 0 {
				cfg.MaxReleaseDelay = clock.Cycles(1 + rng.Intn(40))
			}
			sw := New(cfg)
			rs := newRefSwitch(cfg)
			for p := 0; p < ports; p++ {
				mac := ethernet.MAC(0x0200_0000_0001) + ethernet.MAC(p)
				sw.MACTable().Set(mac, p)
				rs.table[mac] = p
			}
			if rng.Intn(3) == 0 {
				k := clock.Cycles(2 + rng.Intn(30))
				stall := func(port int, cycle clock.Cycles) bool {
					return port == 0 && cycle%64 < k
				}
				sw.SetStall(stall)
				rs.stall = stall
			}

			// Per-port pending flit streams, refilled as they drain.
			streams := make([][]fuzzFlit, ports)
			rounds := 60
			for round := 0; round < rounds; round++ {
				n := []int{4, 8, 16, 32, 64}[rng.Intn(5)]
				inA := make([]*token.Batch, ports)
				inB := make([]*token.Batch, ports)
				outA := make([]*token.Batch, ports)
				outB := make([]*token.Batch, ports)
				for p := 0; p < ports; p++ {
					if len(streams[p]) < 8 && rng.Intn(3) > 0 {
						streams[p] = append(streams[p], fuzzFrame(t, rng, ports)...)
					}
					b := token.NewBatch(n)
					// Feed a random prefix of the port's stream at random
					// strictly-increasing offsets; leftovers span into the
					// next round, exercising partial assemblies.
					off := rng.Intn(4)
					took := 0
					for _, ff := range streams[p] {
						if off >= n || rng.Intn(8) == 0 {
							break
						}
						b.Put(off, token.Token{Data: ff.data, Valid: true, Last: ff.last})
						off += 1 + rng.Intn(3)
						took++
					}
					streams[p] = streams[p][took:]
					inA[p] = b
					inB[p] = b.Copy()
					outA[p] = token.NewBatch(n)
					outB[p] = token.NewBatch(n)
				}
				sw.TickBatch(n, inA, outA)
				rs.tickBatch(n, inB, outB)
				for p := 0; p < ports; p++ {
					a, b := outA[p].Slots, outB[p].Slots
					if len(a) != len(b) {
						t.Fatalf("round %d port %d: %d tokens vs reference %d", round, p, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("round %d port %d slot %d: %+v vs reference %+v", round, p, i, a[i], b[i])
						}
					}
				}
				if got, want := sw.Stats(), rs.stats; got != want {
					t.Fatalf("round %d: stats diverged:\n  got  %+v\n  want %+v", round, got, want)
				}
				if got, want := sw.Cycle(), rs.cycle; got != want {
					t.Fatalf("round %d: cycle %d vs reference %d", round, got, want)
				}
			}
		})
	}
}

// benchSwitchSetup builds a 4-port switch plus reusable dense-round inputs:
// three unicast flows and one broadcast per round, all draining within the
// round.
func benchDenseInputs(tb testing.TB, n int) (ins, outs []*token.Batch) {
	tb.Helper()
	ins = make([]*token.Batch, 4)
	outs = make([]*token.Batch, 4)
	for p := 0; p < 4; p++ {
		ins[p] = token.NewBatch(n)
		outs[p] = token.NewBatch(n)
	}
	put := func(p, off int, flits []uint64) {
		for i, f := range flits {
			ins[p].Put(off+i, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
		}
	}
	mac := func(p int) ethernet.MAC { return ethernet.MAC(0x0200_0000_0001) + ethernet.MAC(p) }
	mk := func(dst, src ethernet.MAC, payload int) []uint64 {
		f := &ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeIPv4, Payload: make([]byte, payload)}
		flits, err := f.FrameFlits()
		if err != nil {
			tb.Fatal(err)
		}
		return flits
	}
	put(0, 0, mk(mac(2), mac(0), 40))
	put(1, 2, mk(mac(3), mac(1), 40))
	put(3, 1, mk(mac(1), mac(3), 24))
	put(2, 4, mk(ethernet.Broadcast, mac(2), 8))
	return ins, outs
}

func benchSwitchMACs(set func(ethernet.MAC, int)) {
	for p := 0; p < 4; p++ {
		set(ethernet.MAC(0x0200_0000_0001)+ethernet.MAC(p), p)
	}
}

func BenchmarkSwitchDenseRound(b *testing.B) {
	const n = 64
	sw := New(Config{Name: "bench", Ports: 4, SwitchingLatency: 10})
	benchSwitchMACs(sw.MACTable().Set)
	ins, outs := benchDenseInputs(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range outs {
			o.Reset(n)
		}
		sw.TickBatch(n, ins, outs)
	}
}

func BenchmarkSwitchIdleRound(b *testing.B) {
	const n = 64
	sw := New(Config{Name: "bench", Ports: 32, SwitchingLatency: 10})
	ins := make([]*token.Batch, 32)
	outs := make([]*token.Batch, 32)
	for p := range ins {
		ins[p] = token.NewBatch(n)
		outs[p] = token.NewBatch(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.TickBatch(n, ins, outs)
	}
}

func BenchmarkReferenceDenseRound(b *testing.B) {
	const n = 64
	rs := newRefSwitch(Config{Name: "bench", Ports: 4, SwitchingLatency: 10})
	benchSwitchMACs(func(m ethernet.MAC, p int) { rs.table[m] = p })
	ins, outs := benchDenseInputs(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range outs {
			o.Reset(n)
		}
		rs.tickBatch(n, ins, outs)
	}
}

func BenchmarkReferenceIdleRound(b *testing.B) {
	const n = 64
	rs := newRefSwitch(Config{Name: "bench", Ports: 32, SwitchingLatency: 10})
	ins := make([]*token.Batch, 32)
	outs := make([]*token.Batch, 32)
	for p := range ins {
		ins[p] = token.NewBatch(n)
		outs[p] = token.NewBatch(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.tickBatch(n, ins, outs)
	}
}
