// Package repro is a from-scratch Go reproduction of "FireSim:
// FPGA-Accelerated Cycle-Exact Scale-Out System Simulation in the Public
// Cloud" (Karandikar et al., ISCA 2018).
//
// The library simulates datacenter targets cycle-exactly: FAME-1
// token-decoupled server models (down to an RV64IM core, caches, DDR3 and
// the paper's NIC design) connected by software switch models through a
// batched token transport, with a manager that builds, maps and deploys
// whole datacenter topologies. See README.md for the architecture
// overview, DESIGN.md for the system inventory and per-experiment index,
// and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation:
//
//	go test -bench=. -benchmem
package repro
