package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register("fig10", func(sc Scale) (Result, error) { return Fig10(sc) })
	register("tableIII", func(sc Scale) (Result, error) { return TableIII(sc) })
}

// Fig10Result summarises the 1024-node datacenter deployment (Figure 10
// plus the Section V-C headline numbers).
type Fig10Result struct {
	Servers, ToRs, Aggs  int
	F116Instances        int
	M416Instances        int
	FPGAs                int
	FPGAValueUSD         float64
	SpotHourly, ODHourly float64
	SimRateMHz           float64
	Slowdown             float64
}

// Title implements Result.
func (Fig10Result) Title() string { return "Figure 10 / Section V-C: 1024-node datacenter simulation" }

// Render implements Result.
func (r Fig10Result) Render() string {
	t := stats.NewTable("Quantity", "Value", "Paper")
	t.AddRow("Simulated servers", r.Servers, 1024)
	t.AddRow("ToR switches", r.ToRs, 32)
	t.AddRow("Aggregation switches", r.Aggs, 4)
	t.AddRow("f1.16xlarge instances", r.F116Instances, 32)
	t.AddRow("m4.16xlarge instances", r.M416Instances, 5)
	t.AddRow("FPGAs", r.FPGAs, 256)
	t.AddRow("FPGA value", fmt.Sprintf("$%.1fM", r.FPGAValueUSD/1e6), "$12.8M")
	t.AddRow("Spot $/hour", fmt.Sprintf("$%.0f", r.SpotHourly), "~$100")
	t.AddRow("On-demand $/hour", fmt.Sprintf("$%.0f", r.ODHourly), "~$440")
	t.AddRow("Measured sim rate", fmt.Sprintf("%.2f MHz", r.SimRateMHz), "3.42 MHz (EC2)")
	t.AddRow("Slowdown vs 3.2 GHz", fmt.Sprintf("%.0fx", r.Slowdown), "<1000x")
	return t.String()
}

// Fig10 deploys the full 1024-node supernode datacenter and measures its
// simulation rate on this host.
func Fig10(sc Scale) (Fig10Result, error) {
	fanouts := []int{4, 8, 32}
	rounds := clock.Cycles(400)
	if sc.Quick {
		fanouts = []int{2, 4, 8} // 64 nodes, same shape
		rounds = 200
	}
	topo, err := core.Tree(fanouts, core.QuadCore)
	if err != nil {
		return Fig10Result{}, err
	}
	c, err := core.Deploy(topo, core.DeployConfig{Supernode: true})
	if err != nil {
		return Fig10Result{}, err
	}
	rate, err := core.MeasureRate(c, c.LinkLatency*rounds)
	if err != nil {
		return Fig10Result{}, err
	}
	tors := 0
	aggs := 0
	for _, sw := range c.Switches {
		name := sw.Name()
		switch {
		case strings.Count(name, ".") == 2 || strings.HasPrefix(name, "tor"):
			tors++
		case strings.Count(name, ".") == 1:
			aggs++
		}
	}
	return Fig10Result{
		Servers:       len(c.Servers),
		ToRs:          tors,
		Aggs:          aggs,
		F116Instances: c.Deployment.Count("f1.16xlarge"),
		M416Instances: c.Deployment.Count("m4.16xlarge"),
		FPGAs:         c.Deployment.FPGAs(),
		FPGAValueUSD:  c.Deployment.FPGAValueUSD(),
		SpotHourly:    c.Deployment.HourlyCost(true),
		ODHourly:      c.Deployment.HourlyCost(false),
		SimRateMHz:    float64(rate.EffectiveHz()) / 1e6,
		Slowdown:      rate.Slowdown(),
	}, nil
}

// TableIIIRow is one pairing configuration of the datacenter-scale
// memcached experiment.
type TableIIIRow struct {
	Config       string
	P50Us, P95Us float64
	AggregateQPS float64
}

// TableIIIResult is the full table.
type TableIIIResult struct {
	Servers int
	Rows    []TableIIIRow
}

// Title implements Result.
func (TableIIIResult) Title() string {
	return "Table III: datacenter-scale memcached latencies and QPS"
}

// Render implements Result.
func (r TableIIIResult) Render() string {
	t := stats.NewTable("Config", "50th pct (us)", "95th pct (us)", "Aggregate QPS")
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.P50Us, row.P95Us, fmt.Sprintf("%.0f", row.AggregateQPS))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(%d simulated servers)\n", r.Servers)
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: p50 79.26 / 87.10 / 93.82 us (each hop tier adds ~8 us =\n" +
		"4 extra 2 us link crossings); p95 shows no predictable change; aggregate QPS\n" +
		"4.69M / 4.49M / 4.08M.\n")
	return b.String()
}

// TableIII runs memcached across the tree datacenter with three pairings:
// requests that stay intra-rack (crossing only the ToR), requests that
// cross an aggregation switch, and requests that cross the root.
func TableIII(sc Scale) (TableIIIResult, error) {
	fanouts := []int{4, 8, 32}
	window := clock.Cycles(96_000_000) // 30 ms
	perPairQPS := 9200.0
	if sc.Quick {
		fanouts = []int{2, 4, 8}
		window = 48_000_000
	}
	aggF, torF, srvF := fanouts[0], fanouts[1], fanouts[2]
	half := srvF / 2

	var out TableIIIResult
	for _, pairing := range []string{"Cross-ToR", "Cross-aggregation", "Cross-datacenter"} {
		topo, err := core.Tree(fanouts, core.QuadCore)
		if err != nil {
			return TableIIIResult{}, err
		}
		c, err := core.Deploy(topo, core.DeployConfig{Supernode: true, Seed: 7})
		if err != nil {
			return TableIIIResult{}, err
		}
		out.Servers = len(c.Servers)

		// Server assignment order is depth-first: servers of rack r (in
		// agg a) occupy indices ((a*torF)+r)*srvF ... +srvF-1. The first
		// half of each rack serves; the second half generates load.
		serverAt := func(agg, rack, k int) int { return ((agg*torF)+rack)*srvF + k }
		var gens []*apps.Mutilate
		for a := 0; a < aggF; a++ {
			for r := 0; r < torF; r++ {
				for k := 0; k < half; k++ {
					// The memcached instance lives at (a, r, k).
					apps.NewMemcachedServer(c.Servers[serverAt(a, r, k)],
						apps.MemcachedConfig{Threads: 4, Pinned: true})
				}
				for k := 0; k < half; k++ {
					// The load generator lives at (a, r, half+k); its
					// target depends on the pairing.
					var ta, tr int
					switch pairing {
					case "Cross-ToR":
						ta, tr = a, r // same rack: only the ToR is crossed
					case "Cross-aggregation":
						ta, tr = a, (r+1)%torF // different rack, same agg
					default:
						ta, tr = (a+1)%aggF, r // different agg: cross root
					}
					gen := c.Servers[serverAt(a, r, half+k)]
					target := c.Servers[serverAt(ta, tr, k)]
					gens = append(gens, apps.NewMutilate(gen, apps.MutilateConfig{
						Server:      target.IP(),
						QPS:         perPairQPS,
						Connections: 4,
						Duration:    window,
						Seed:        uint64(serverAt(a, r, k)),
					}))
				}
			}
		}
		if err := c.RunFor(window + 2_000_000); err != nil {
			return TableIIIResult{}, err
		}

		// Average the per-pair percentiles across all server-client
		// pairs, as the paper reports.
		var p50s, p95s stats.Sample
		var received uint64
		for _, g := range gens {
			if g.Latencies.N() == 0 {
				continue
			}
			p50s.Add(g.Latencies.Median())
			p95s.Add(g.Latencies.P95())
			received += g.Received
		}
		seconds := float64(window) / 3.2e9
		out.Rows = append(out.Rows, TableIIIRow{
			Config:       pairing,
			P50Us:        p50s.Mean(),
			P95Us:        p95s.Mean(),
			AggregateQPS: float64(received) / seconds,
		})
	}
	return out, nil
}
