package transport

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/token"
)

// TestCloseInterruptsBackoff: a bridge stuck in its reconnect backoff
// sleep must abort the moment another goroutine calls Close, instead of
// waiting out BackoffMax. The bridge is configured with a multi-second
// backoff and a redial that always fails; without the interruptible
// sleep this test would take minutes.
func TestCloseInterruptsBackoff(t *testing.T) {
	client, server := net.Pipe()
	server.Close() // first exchange fails immediately → reconnect path
	br := NewBridgeConfig("close-test", client, BridgeConfig{
		Redial:        func() (io.ReadWriter, error) { return nil, fmt.Errorf("peer still down") },
		MaxReconnects: 1000,
		BackoffBase:   5 * time.Second,
		BackoffMax:    30 * time.Second,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		in := []*token.Batch{token.NewBatch(8)}
		out := []*token.Batch{token.NewBatch(8)}
		br.TickBatch(8, in, out) // blocks in reconnect backoff
	}()

	time.Sleep(50 * time.Millisecond) // let it reach the backoff sleep
	start := time.Now()
	br.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("TickBatch still blocked 2s after Close; backoff sleep was not interrupted")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("Close took %v to unblock TickBatch", waited)
	}
	if br.Err() == nil {
		t.Fatal("closed bridge reports no error")
	}
}

// A closed bridge must fail fast on the next TickBatch, not touch the
// network.
func TestTickBatchAfterClose(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	br := NewBridge("closed", client)
	br.Close()
	in := []*token.Batch{token.NewBatch(4)}
	out := []*token.Batch{token.NewBatch(4)}
	doneCh := make(chan struct{})
	go func() {
		br.TickBatch(4, in, out)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(time.Second):
		t.Fatal("TickBatch on a closed bridge blocked")
	}
	if br.Err() == nil {
		t.Fatal("TickBatch on closed bridge did not latch an error")
	}
}

// TestJitterBackoffBounds: the jitter stays within ±20% and is
// deterministic per (name, attempt) — a respawned fleet spreads out, a
// re-run of the same bridge reproduces the same delays.
func TestJitterBackoffBounds(t *testing.T) {
	base := 100 * time.Millisecond
	lo := time.Duration(float64(base) * 0.8)
	hi := time.Duration(float64(base) * 1.2)
	seen := make(map[time.Duration]bool)
	for attempt := 1; attempt <= 32; attempt++ {
		d := jitterBackoff("shard7", attempt, base)
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: jittered delay %v outside [%v, %v)", attempt, d, lo, hi)
		}
		if d != jitterBackoff("shard7", attempt, base) {
			t.Fatalf("attempt %d: jitter not deterministic", attempt)
		}
		seen[d] = true
	}
	if len(seen) < 16 {
		t.Fatalf("only %d distinct delays over 32 attempts; jitter is not spreading", len(seen))
	}
	if jitterBackoff("shard1", 1, base) == jitterBackoff("shard2", 1, base) {
		t.Fatal("different bridges produced identical first delays; fleet would reconnect in lockstep")
	}
}

// Reset must revive a Closed bridge (fresh stop channel, cleared error)
// so the coordinator can re-use the same Bridge value across recovery
// epochs.
func TestResetRevivesClosedBridge(t *testing.T) {
	a1, b1 := net.Pipe()
	defer b1.Close()
	br := NewBridge("revive", a1)
	br.Close()
	a2, b2 := net.Pipe()
	defer a2.Close()
	defer b2.Close()
	br.Reset(a2, 0)
	if br.Err() != nil {
		t.Fatalf("revived bridge still errored: %v", br.Err())
	}
	// And Close works again after the revival (new stop channel).
	br.Close()
	if !br.closed.Load() {
		t.Fatal("second Close did not mark the bridge closed")
	}
}
