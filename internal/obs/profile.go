package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles manages optional host-side CPU profiling and execution tracing
// for a simulation run. The hot-path instruments in this package answer
// "what is the simulator doing?"; pprof and the execution tracer answer
// "where is the host spending its time doing it?" — goroutine scheduling
// stalls in RunParallel show up in the trace, per-endpoint CPU burn in the
// profile. The CLI wires these behind -cpuprofile and -trace flags.
//
// The zero value is inert; call Start with the desired paths, and Stop
// (usually deferred) to flush and close. Empty paths disable the
// corresponding collector.
type Profiles struct {
	cpuFile   *os.File
	traceFile *os.File
}

// Start begins CPU profiling and/or execution tracing, writing to the
// given file paths. An empty path disables that collector. On error,
// anything already started is stopped.
func (p *Profiles) Start(cpuPath, tracePath string) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			p.Stop()
			return fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return fmt.Errorf("obs: trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

// Stop flushes and closes every collector Start enabled. It is safe to
// call on a zero Profiles and safe to call more than once.
func (p *Profiles) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		trace.Stop()
		p.traceFile.Close()
		p.traceFile = nil
	}
}
