// Package transport implements FireSim's physical token transports
// (Section III-B2).
//
// The paper moves tokens over three transports: PCIe/EDMA between FPGA and
// host, shared memory between processes on one host, and TCP sockets
// between hosts. In this reproduction the fame.Runner's channels play the
// shared-memory role; this package adds:
//
//   - a wire codec for token batches (binary framing), and
//   - Bridge, a fame.Endpoint that splices a simulation across two Runner
//     instances — potentially in different OS processes or machines —
//     over any io.ReadWriter (usually a TCP connection). A Bridge pair
//     behaves as a zero-latency wire: all target latency stays in the
//     explicit links, so splitting a topology across hosts does not change
//     its cycle-level behaviour (asserted by tests).
//
// As in the paper, tokens are batched to one link latency's worth per
// exchange, and "the exchange of these tokens ensures that each server
// simulation computes each target cycle deterministically": a Bridge
// blocks until its peer's batch arrives, which is exactly the decoupled
// synchronisation the token protocol prescribes.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/token"
)

// maxSlots bounds decoded batch occupancy as a sanity check against
// corrupt streams.
const maxSlots = 1 << 24

// WriteBatch encodes a batch to w.
func WriteBatch(w io.Writer, b *token.Batch) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(b.N))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(b.Slots)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	var rec [13]byte
	for _, s := range b.Slots {
		binary.BigEndian.PutUint32(rec[0:4], uint32(s.Offset))
		binary.BigEndian.PutUint64(rec[4:12], s.Tok.Data)
		var flags byte
		if s.Tok.Valid {
			flags |= 1
		}
		if s.Tok.Last {
			flags |= 2
		}
		rec[12] = flags
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("transport: write slot: %w", err)
		}
	}
	return nil
}

// ReadBatch decodes a batch from r into dst (which is Reset first).
func ReadBatch(r io.Reader, dst *token.Batch) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("transport: read header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	count := int(binary.BigEndian.Uint32(hdr[4:8]))
	if n <= 0 || count < 0 || count > maxSlots || count > n {
		return fmt.Errorf("transport: corrupt batch header (n=%d, slots=%d)", n, count)
	}
	dst.Reset(n)
	var rec [13]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return fmt.Errorf("transport: read slot: %w", err)
		}
		off := int(int32(binary.BigEndian.Uint32(rec[0:4])))
		tok := token.Token{
			Data:  binary.BigEndian.Uint64(rec[4:12]),
			Valid: rec[12]&1 != 0,
			Last:  rec[12]&2 != 0,
		}
		if off < 0 || off >= n {
			return fmt.Errorf("transport: corrupt slot offset %d", off)
		}
		dst.Put(off, tok)
	}
	return nil
}

// Bridge splices one token stream endpoint of a distributed simulation.
// It forwards everything received on its single local port to the peer
// and emits everything the peer sends. Both sides must advance in
// identical batch steps (guaranteed when both topologies use the same
// link latencies).
type Bridge struct {
	name string
	w    *bufio.Writer
	r    *bufio.Reader
	err  error
}

// NewBridge wraps a connection. Each side of the distributed simulation
// creates one Bridge over its end of the connection and Connects it where
// the remote half of the topology would attach.
func NewBridge(name string, conn io.ReadWriter) *Bridge {
	return &Bridge{
		name: name,
		w:    bufio.NewWriter(conn),
		r:    bufio.NewReader(conn),
	}
}

// Err reports the first transport error encountered (the simulation
// cannot continue past one; subsequent batches are empty).
func (b *Bridge) Err() error { return b.err }

// Name implements fame.Endpoint.
func (b *Bridge) Name() string { return b.name }

// NumPorts implements fame.Endpoint.
func (b *Bridge) NumPorts() int { return 1 }

// TickBatch implements fame.Endpoint: ship the local batch and block for
// the peer's batch covering the same target window. The write runs
// concurrently with the read so that the exchange cannot deadlock even on
// fully synchronous connections (both peers write simultaneously).
func (b *Bridge) TickBatch(n int, in, out []*token.Batch) {
	if b.err != nil {
		return
	}
	writeDone := make(chan error, 1)
	go func() {
		if err := WriteBatch(b.w, in[0]); err != nil {
			writeDone <- err
			return
		}
		writeDone <- b.w.Flush()
	}()
	readErr := ReadBatch(b.r, out[0])
	writeErr := <-writeDone
	switch {
	case writeErr != nil:
		b.err = writeErr
	case readErr != nil:
		b.err = readErr
	case out[0].N != n:
		b.err = fmt.Errorf("transport: peer batch covers %d cycles, local step is %d", out[0].N, n)
	}
}
