// Package clock provides target-time bookkeeping for cycle-exact
// simulation. When the paper refers to a server blade running at frequency
// f (e.g. 3.2 GHz), it means that every model with a notion of target time
// treats one cycle as 1/f seconds; this package centralises that
// conversion.
package clock

import (
	"fmt"
	"math"
	"time"
)

// Hz is a clock frequency in cycles per second.
type Hz float64

// Common frequencies used throughout the FireSim evaluation.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// DefaultTargetClock is the 3.2 GHz target processor clock used for all
// blade configurations in the paper (Table I).
const DefaultTargetClock = 3.2 * GHz

// Cycles is a duration expressed in target clock cycles.
type Cycles int64

// Clock converts between target cycles and wall-clock-style durations at a
// fixed frequency.
type Clock struct {
	freq Hz
}

// New returns a clock at the given frequency. It panics on non-positive
// frequencies, which indicate a construction bug rather than a runtime
// condition.
func New(freq Hz) Clock {
	if freq <= 0 {
		panic(fmt.Sprintf("clock: frequency must be positive, got %v", freq))
	}
	return Clock{freq: freq}
}

// Freq returns the clock frequency.
func (c Clock) Freq() Hz { return c.freq }

// CyclesIn returns the number of target cycles in d, rounded to nearest so
// that exact conversions (e.g. 2 µs at 3.2 GHz = 6400 cycles) survive the
// float arithmetic.
func (c Clock) CyclesIn(d time.Duration) Cycles {
	return Cycles(math.Round(d.Seconds() * float64(c.freq)))
}

// Duration returns the target time spanned by n cycles, rounded to the
// nearest nanosecond.
func (c Clock) Duration(n Cycles) time.Duration {
	return time.Duration(math.Round(float64(n) / float64(c.freq) * float64(time.Second)))
}

// Micros returns the target time spanned by n cycles in microseconds as a
// float; most latencies in the paper are reported in microseconds.
func (c Clock) Micros(n Cycles) float64 {
	return float64(n) / float64(c.freq) * 1e6
}

// CyclesInMicros returns the number of whole cycles in us microseconds.
func (c Clock) CyclesInMicros(us float64) Cycles {
	return Cycles(us * 1e-6 * float64(c.freq))
}

// String renders the frequency in a human-readable unit.
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.4g GHz", float64(f)/float64(GHz))
	case f >= MHz:
		return fmt.Sprintf("%.4g MHz", float64(f)/float64(MHz))
	case f >= KHz:
		return fmt.Sprintf("%.4g KHz", float64(f)/float64(KHz))
	default:
		return fmt.Sprintf("%.4g Hz", float64(f))
	}
}

// SimRate describes how fast a simulation is running relative to the target
// machine: the effective target clock rate achieved per wall-clock second,
// and the slowdown factor versus real time.
type SimRate struct {
	// TargetCycles is how many target cycles were simulated.
	TargetCycles Cycles
	// Wall is how long the host took to simulate them.
	Wall time.Duration
	// TargetFreq is the nominal target clock.
	TargetFreq Hz
}

// EffectiveHz returns the achieved simulation rate in target-Hz (the paper
// reports e.g. "simulates at a 3.4 MHz processor clock rate").
func (r SimRate) EffectiveHz() Hz {
	if r.Wall <= 0 {
		return 0
	}
	return Hz(float64(r.TargetCycles) / r.Wall.Seconds())
}

// Slowdown returns the slowdown factor over real time (the paper's
// "less than 1,000x slowdown").
func (r SimRate) Slowdown() float64 {
	eff := r.EffectiveHz()
	if eff <= 0 {
		return 0
	}
	return float64(r.TargetFreq) / float64(eff)
}

// String summarises the rate like the paper does: "3.40 MHz (941x slowdown)".
func (r SimRate) String() string {
	s := r.Slowdown()
	if s > 0 && s < 1 {
		return fmt.Sprintf("%v (%.1fx faster than the %v target)", r.EffectiveHz(), 1/s, r.TargetFreq)
	}
	return fmt.Sprintf("%v (%.0fx slowdown)", r.EffectiveHz(), s)
}
