// Package apps implements the workloads used by the paper's validation
// and evaluation sections on top of the modeled software stack:
//
//   - a memcached-style key-value server with a configurable worker-thread
//     count and optional one-thread-per-core pinning (Section IV-E),
//   - a mutilate-style closed/open-loop load generator measuring 50th and
//     95th percentile latency at a controlled offered QPS,
//   - an iperf3-style streaming benchmark (Section IV-B).
package apps

import (
	"encoding/binary"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/softstack"
	"repro/internal/stats"
)

// MemcachedPort is the standard memcached service port.
const MemcachedPort = 11211

// MemcachedConfig parameterises the server.
type MemcachedConfig struct {
	// Threads is the number of worker threads. The paper runs 4 or 5
	// threads on 4-core servers to demonstrate thread imbalance.
	Threads int
	// Pinned pins worker i to core i%cores (taskset-style).
	Pinned bool
	// ServiceCost is the userspace request-processing cost; zero takes
	// the default (hash lookup, value copy, response formatting).
	ServiceCost clock.Cycles
}

// MemcachedServer is a modeled memcached instance.
type MemcachedServer struct {
	node    *softstack.Node
	cfg     MemcachedConfig
	workers []*softstack.Thread
	// conns maps a client connection (ip, port) to its assigned worker,
	// mirroring memcached's round-robin connection distribution.
	conns    map[uint64]int
	nextConn int
	rng      uint64

	// Served counts completed requests.
	Served uint64
}

// DefaultServiceCost is the per-request userspace cost at 3.2 GHz
// (~15 us: parse, hash, copy, format).
func DefaultServiceCost(freq clock.Hz) clock.Cycles {
	return clock.New(freq).CyclesInMicros(15)
}

// NewMemcachedServer installs a memcached server on the node.
func NewMemcachedServer(n *softstack.Node, cfg MemcachedConfig) *MemcachedServer {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.ServiceCost == 0 {
		cfg.ServiceCost = DefaultServiceCost(n.Clock().Freq())
	}
	s := &MemcachedServer{node: n, cfg: cfg, conns: make(map[uint64]int), rng: uint64(n.MAC())*0x9e3779b97f4a7c15 + 0x5851}
	for i := 0; i < cfg.Threads; i++ {
		pin := -1
		if cfg.Pinned {
			pin = i % 4
		}
		s.workers = append(s.workers, n.NewThread(pin))
	}
	n.HandleUDP(MemcachedPort, s.onRequest)
	return s
}

// onRequest runs at kernel delivery time: pick the connection's worker and
// queue the userspace work (wakeup latency + epoll/read syscalls + service
// + response transmit).
func (s *MemcachedServer) onRequest(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte) {
	key := uint64(src)<<16 | uint64(srcPort)
	wi, ok := s.conns[key]
	if !ok {
		wi = s.nextConn % len(s.workers)
		s.conns[key] = wi
		s.nextConn++
	}
	worker := s.workers[wi]
	costs := s.node.Costs()
	req := append([]byte(nil), payload...)
	service := s.serviceDraw()
	s.node.At(now+costs.SockWakeup, func(wake clock.Cycles) {
		cost := costs.Syscall*2 + service + costs.KernelTX
		worker.Submit(wake, softstack.Job{Cost: cost, Fn: func(done clock.Cycles) {
			s.Served++
			// Response: echo the request header (id + client timestamp)
			// with a modeled value payload.
			resp := make([]byte, len(req)+64)
			copy(resp, req)
			s.node.SendUDPAccounted(done, src, srcPort, MemcachedPort, resp)
		}})
	})
}

// serviceDraw samples the per-request userspace cost: mostly a uniform
// band around the nominal cost (value-size and hash-chain variation), with
// an occasional 3x slow path (allocation, LRU maintenance) that gives the
// tail the "other variability" the paper sees dominating p95 at light
// load.
func (s *MemcachedServer) serviceDraw() clock.Cycles {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	r := x * 2685821657736338717
	base := float64(s.cfg.ServiceCost)
	u := float64(r%1000) / 1000
	cost := base * (0.7 + 0.6*u)
	if r>>32%100 < 5 {
		cost = base * 3
	}
	return clock.Cycles(cost)
}

// WorkerQueueLens reports the instantaneous queue depth of each worker,
// for imbalance diagnostics.
func (s *MemcachedServer) WorkerQueueLens() []int {
	out := make([]int, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.QueueLen()
	}
	return out
}

// MutilateConfig parameterises a load-generator node.
type MutilateConfig struct {
	// Server is the target memcached instance.
	Server ethernet.IP
	// QPS is the offered load from this generator.
	QPS float64
	// Connections is the number of distinct client connections (each maps
	// to a source port, and therefore to a server worker thread).
	Connections int
	// Start and Duration bound the measurement window, in cycles.
	Start    clock.Cycles
	Duration clock.Cycles
	// Seed drives the generator's deterministic arrival process.
	Seed uint64
}

// Mutilate is a modeled mutilate load generator: it offers an open-loop
// Poisson request stream at the configured QPS and records per-request
// latency from userspace send to userspace receive.
type Mutilate struct {
	node *softstack.Node
	cfg  MutilateConfig

	// Latencies collects microsecond round-trip samples.
	Latencies stats.Sample
	// Sent and Received count requests.
	Sent, Received uint64

	rng     uint64
	nextID  uint64
	pending map[uint64]clock.Cycles
}

// basePort is the first source port used for connections.
const basePort = 40000

// NewMutilate installs a load generator on the node and schedules its
// request stream.
func NewMutilate(n *softstack.Node, cfg MutilateConfig) *Mutilate {
	if cfg.Connections <= 0 {
		cfg.Connections = 4
	}
	m := &Mutilate{node: n, cfg: cfg, rng: cfg.Seed*0x9e3779b97f4a7c15 + 1, pending: make(map[uint64]clock.Cycles)}
	for c := 0; c < cfg.Connections; c++ {
		n.HandleUDP(basePort+uint16(c), m.onResponse)
	}
	m.scheduleNext(cfg.Start)
	return m
}

func (m *Mutilate) rand() uint64 {
	x := m.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rng = x
	return x * 2685821657736338717
}

// expInterval draws an exponential inter-arrival gap in cycles for the
// configured QPS at the node's clock.
func (m *Mutilate) expInterval() clock.Cycles {
	mean := float64(m.node.Clock().Freq()) / m.cfg.QPS
	// Inverse-CDF with a uniform in (0,1]; clamp the tail to 8x mean so a
	// single unlucky draw cannot stall the generator.
	u := float64(m.rand()%1_000_000+1) / 1_000_000
	gap := -mean * ln(u)
	if gap > 8*mean {
		gap = 8 * mean
	}
	if gap < 1 {
		gap = 1
	}
	return clock.Cycles(gap)
}

// ln is a small local natural-log to avoid importing math in the hot
// path... actually math.Log is fine; kept as a named indirection for
// clarity at call sites.
func ln(x float64) float64 { return mathLog(x) }

func (m *Mutilate) scheduleNext(at clock.Cycles) {
	if at >= m.cfg.Start+m.cfg.Duration {
		return
	}
	m.node.At(at, func(now clock.Cycles) {
		m.sendRequest(now)
		m.scheduleNext(now + m.expInterval())
	})
}

func (m *Mutilate) sendRequest(now clock.Cycles) {
	id := m.nextID
	m.nextID++
	conn := uint16(id % uint64(m.cfg.Connections))
	payload := make([]byte, 32)
	binary.BigEndian.PutUint64(payload[0:8], id)
	binary.BigEndian.PutUint64(payload[8:16], uint64(now))
	m.pending[id] = now
	m.Sent++
	m.node.SendUDP(now, m.cfg.Server, MemcachedPort, basePort+conn, payload)
}

func (m *Mutilate) onResponse(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte) {
	if len(payload) < 16 {
		return
	}
	id := binary.BigEndian.Uint64(payload[0:8])
	sent, ok := m.pending[id]
	if !ok {
		return
	}
	delete(m.pending, id)
	// Userspace sees the response after the socket wakeup.
	done := now + m.node.Costs().SockWakeup
	m.Received++
	m.Latencies.Add(m.node.Clock().Micros(done - sent))
}
