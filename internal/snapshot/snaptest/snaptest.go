// Package snaptest provides the shared conformance test every
// Snapshotter implementation runs: save → restore → save must produce
// identical bytes, and truncated, bit-flipped or wrong-version streams
// must return errors without ever panicking.
package snaptest

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/snapshot"
)

// header used for all conformance streams; the values are arbitrary but
// fixed so byte comparisons are meaningful.
var header = snapshot.Header{TopologyHash: 0x5eed, Cycle: 1000, Step: 8}

// save serialises src into a single-section snapshot stream.
func save(t *testing.T, src snapshot.Snapshotter) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, header)
	if err != nil {
		t.Fatalf("snaptest: NewWriter: %v", err)
	}
	w.Section("state")
	if err := src.Save(w); err != nil {
		t.Fatalf("snaptest: Save: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("snaptest: Close: %v", err)
	}
	return buf.Bytes()
}

// restore feeds stream into dst, returning the first error from any
// stage. It recovers panics into test failures so a corrupted stream can
// never crash the process.
func restore(t *testing.T, dst snapshot.Snapshotter, stream []byte) (err error) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("snaptest: Restore panicked: %v", rec)
		}
	}()
	r, _, err := snapshot.NewReader(bytes.NewReader(stream))
	if err != nil {
		return err
	}
	if _, err := r.Next(); err != nil {
		return err
	}
	if err := dst.Restore(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	// The stream must also carry its trailer; a clean component restore
	// on a truncated stream is still a truncated stream.
	if _, err := r.Next(); err != io.EOF {
		return err
	}
	return nil
}

// Save serialises src into a single-section conformance stream. Exported
// so per-layer tests can build continuation checks (checkpoint, resume,
// compare) on the same framing RoundTrip uses.
func Save(t *testing.T, src snapshot.Snapshotter) []byte {
	t.Helper()
	return save(t, src)
}

// Restore feeds a stream produced by Save into dst, failing the test on
// any error.
func Restore(t *testing.T, dst snapshot.Snapshotter, stream []byte) {
	t.Helper()
	if err := restore(t, dst, stream); err != nil {
		t.Fatalf("snaptest: Restore: %v", err)
	}
}

// RoundTrip is the conformance suite. src is a populated instance whose
// state is being checkpointed; fresh must return a new, structurally
// compatible, empty instance per call (restores mutate their target, so
// every attempt needs its own victim).
func RoundTrip(t *testing.T, src snapshot.Snapshotter, fresh func() snapshot.Snapshotter) {
	t.Helper()

	first := save(t, src)

	t.Run("SaveRestoreSaveIdentical", func(t *testing.T) {
		dst := fresh()
		if err := restore(t, dst, first); err != nil {
			t.Fatalf("restore of clean stream: %v", err)
		}
		second := save(t, dst)
		if !bytes.Equal(first, second) {
			t.Fatalf("restored state re-saves to different bytes (%d vs %d)", len(first), len(second))
		}
		// Saving must not perturb the source either.
		again := save(t, src)
		if !bytes.Equal(first, again) {
			t.Fatal("saving twice from the same source produced different bytes")
		}
	})

	t.Run("TruncationNeverPanics", func(t *testing.T) {
		// Every strict prefix must error. Dense sweep for short streams,
		// sampled for long ones (memory images can be megabytes).
		stride := 1
		if len(first) > 4096 {
			stride = len(first) / 4096
		}
		for n := 0; n < len(first); n += stride {
			if err := restore(t, fresh(), first[:n]); err == nil {
				t.Fatalf("truncated stream (%d/%d bytes) restored without error", n, len(first))
			}
		}
		if err := restore(t, fresh(), first[:len(first)-1]); err == nil {
			t.Fatal("stream missing only its trailer restored without error")
		}
	})

	t.Run("BitFlipsNeverPanic", func(t *testing.T) {
		// Flip one bit at a sweep of positions. Most flips must error
		// (CRC catches payload damage; framing checks catch the rest) —
		// but the invariant under test is "no panic", which restore()
		// converts to a test failure.
		stride := 1
		if len(first) > 2048 {
			stride = len(first) / 2048
		}
		mut := make([]byte, len(first))
		for pos := 0; pos < len(first); pos += stride {
			copy(mut, first)
			mut[pos] ^= 0x10
			_ = restore(t, fresh(), mut)
		}
	})

	t.Run("WrongStreamVersionErrors", func(t *testing.T) {
		mut := append([]byte(nil), first...)
		mut[4] ^= 0xFF // format version field
		if err := restore(t, fresh(), mut); err == nil {
			t.Fatal("wrong format version restored without error")
		}
	})

	t.Run("EmptySectionErrors", func(t *testing.T) {
		// A valid stream whose section carries no payload: the component
		// must fail its Begin mark, not misread garbage.
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, header)
		if err != nil {
			t.Fatal(err)
		}
		w.Section("state")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := restore(t, fresh(), buf.Bytes()); err == nil {
			t.Fatal("empty section restored without error")
		}
	})
}
